//! Core engine tests: Table II event counts, cross-strategy numerical
//! equivalence, and agreement between measured memory high-water marks and
//! the analytical model.

use dfg_dataflow::{memreq_units, Strategy};
use dfg_expr::compile;
use dfg_mesh::{RectilinearMesh, RtWorkload};
use dfg_ocl::{DeviceProfile, ExecMode};

use crate::{Engine, EngineOptions, FieldSet, Workload};

fn small_rt_fields(dims: [usize; 3]) -> FieldSet {
    let mesh = RectilinearMesh::unit_cube(dims);
    FieldSet::for_rt_mesh(&mesh, &RtWorkload::paper_default())
}

fn cpu_engine() -> Engine {
    Engine::new(DeviceProfile::intel_x5660())
}

#[test]
fn table2_counts_match_paper_exactly() {
    // The paper's Table II, all nine rows, asserted against measured device
    // events. These counts are size-independent; a small grid suffices.
    let fields = small_rt_fields([6, 5, 4]);
    let mut engine = cpu_engine();
    for workload in Workload::ALL {
        for strategy in Strategy::ALL {
            let report = engine
                .derive(workload.source(), &fields, strategy)
                .unwrap_or_else(|e| panic!("{workload}/{strategy}: {e}"));
            assert_eq!(
                report.table2_row(),
                workload.paper_table2(strategy),
                "{workload} under {strategy}"
            );
        }
    }
}

#[test]
fn strategies_agree_with_each_other_and_reference() {
    let fields = small_rt_fields([8, 7, 6]);
    let mut engine = cpu_engine();
    for workload in Workload::ALL {
        let rt = engine
            .derive(workload.source(), &fields, Strategy::Roundtrip)
            .unwrap();
        let st = engine
            .derive(workload.source(), &fields, Strategy::Staged)
            .unwrap();
        let fu = engine
            .derive(workload.source(), &fields, Strategy::Fusion)
            .unwrap();
        let rf = engine.run_reference(workload, &fields).unwrap();
        let rt = rt.field.unwrap();
        let st = st.field.unwrap();
        let fu = fu.field.unwrap();
        let rf = rf.field.unwrap();
        let scale = rt.data.iter().fold(1e-6f32, |acc, &x| acc.max(x.abs()));
        for i in 0..rt.ncells {
            let (a, b, c, d) = (rt.data[i], st.data[i], fu.data[i], rf.data[i]);
            assert!(
                (a - b).abs() <= 1e-5 * scale,
                "{workload} roundtrip vs staged at {i}: {a} vs {b}"
            );
            assert!(
                (a - c).abs() <= 1e-5 * scale,
                "{workload} roundtrip vs fusion at {i}: {a} vs {c}"
            );
            assert!(
                (a - d).abs() <= 1e-4 * scale,
                "{workload} roundtrip vs reference at {i}: {a} vs {d}"
            );
        }
    }
}

#[test]
fn measured_high_water_matches_analytical_model() {
    // The executors and dfg_dataflow::memreq must agree byte-for-byte.
    let dims = [6, 5, 4];
    let n = (dims[0] * dims[1] * dims[2]) as u64;
    let fields = small_rt_fields(dims);
    let mut engine = cpu_engine();
    for workload in Workload::ALL {
        let spec = compile(workload.source()).unwrap();
        for strategy in Strategy::ALL {
            let report = engine.derive_spec(&spec, &fields, strategy).unwrap();
            let predicted = memreq_units(&spec, strategy).unwrap().bytes(n);
            assert_eq!(
                report.high_water_bytes(),
                predicted,
                "{workload} under {strategy}: measured vs modeled"
            );
        }
    }
}

#[test]
fn model_mode_reproduces_real_mode_accounting() {
    let dims = [6, 5, 4];
    let fields_real = small_rt_fields(dims);
    let fields_virtual = {
        let mut fs = FieldSet::new(dims[0] * dims[1] * dims[2]);
        for name in ["u", "v", "w", "x", "y", "z"] {
            fs.insert_virtual_scalar(name);
        }
        fs.insert_virtual_small("dims");
        fs
    };
    let mut real = cpu_engine();
    let mut model = Engine::with_options(
        DeviceProfile::intel_x5660(),
        EngineOptions {
            mode: ExecMode::Model,
            ..Default::default()
        },
    );
    for workload in Workload::ALL {
        for strategy in Strategy::ALL {
            let r = real
                .derive(workload.source(), &fields_real, strategy)
                .unwrap();
            let m = model
                .derive(workload.source(), &fields_virtual, strategy)
                .unwrap();
            assert!(m.field.is_none());
            assert_eq!(r.table2_row(), m.table2_row(), "{workload}/{strategy}");
            assert_eq!(r.high_water_bytes(), m.high_water_bytes());
            assert!(
                (r.device_seconds() - m.device_seconds()).abs() < 1e-12,
                "{workload}/{strategy} modeled clocks diverge"
            );
        }
    }
}

#[test]
fn fusion_reports_generated_source() {
    let fields = small_rt_fields([4, 4, 4]);
    let mut engine = cpu_engine();
    let report = engine
        .derive(Workload::QCriterion.source(), &fields, Strategy::Fusion)
        .unwrap();
    let src = report.generated_source.expect("fusion emits source");
    assert!(src.contains("__kernel void fused_q_crit"));
    assert!(src.contains("dfg_grad3d("));
    assert!(src.contains("0.5f"), "constant not source-inserted");
    // Roundtrip/staged do not generate source.
    let r2 = engine
        .derive(Workload::QCriterion.source(), &fields, Strategy::Staged)
        .unwrap();
    assert!(r2.generated_source.is_none());
}

#[test]
fn gpu_oom_failure_mode() {
    // A grid big enough that staged Q-criterion exceeds the M2050's 3 GB in
    // model mode (no host RAM needed).
    let mut engine = Engine::with_options(
        DeviceProfile::nvidia_m2050(),
        EngineOptions {
            mode: ExecMode::Model,
            ..Default::default()
        },
    );
    let fields = FieldSet::virtual_rt([192, 192, 2048]);
    let err = engine
        .derive(Workload::QCriterion.source(), &fields, Strategy::Staged)
        .unwrap_err();
    assert!(err.is_out_of_memory(), "expected OOM, got {err}");
    // The same case fits under fusion (7 problem-sized arrays).
    let ok = engine
        .derive(Workload::QCriterion.source(), &fields, Strategy::Fusion)
        .unwrap();
    assert!(ok.high_water_bytes() <= 2_500_000_000);
}

#[test]
fn missing_field_is_reported() {
    let mut engine = cpu_engine();
    let mut fields = FieldSet::new(8);
    fields.insert_scalar("u", vec![0.0; 8]).unwrap();
    let err = engine
        .derive("r = u + q", &fields, Strategy::Staged)
        .unwrap_err();
    assert!(matches!(err, crate::EngineError::MissingField { ref name } if name == "q"));
}

#[test]
fn intro_conditional_executes() {
    // §I: a = if (norm(grad3d(b,…)) > 10) then (c*c) else (-c*c)
    let mesh = RectilinearMesh::unit_cube([6, 6, 6]);
    let mut fields = FieldSet::new(mesh.ncells());
    let (x, y, z) = mesh.coord_arrays();
    // b has |grad| = 20 in half the domain, 0 elsewhere.
    let b = mesh.sample(|x, _, _| if x > 0.5 { 20.0 * x } else { 0.0 });
    let c = mesh.sample(|_, y, _| 1.0 + y);
    fields.insert_scalar("x", x).unwrap();
    fields.insert_scalar("y", y).unwrap();
    fields.insert_scalar("z", z).unwrap();
    fields.insert_scalar("b", b).unwrap();
    fields.insert_scalar("c", c).unwrap();
    fields.insert_small("dims", mesh.dims_buffer());
    let mut engine = cpu_engine();
    for strategy in Strategy::ALL {
        let out = engine
            .derive(crate::workloads::INTRO_CONDITIONAL, &fields, strategy)
            .unwrap()
            .field
            .unwrap();
        let s = out.as_scalar().unwrap();
        // Interior cell with steep gradient: c*c > 0; flat region: -c*c < 0.
        let steep = mesh.index(4, 3, 3);
        let flat = mesh.index(1, 3, 3);
        assert!(s[steep] > 0.0, "{strategy}: steep cell must be positive");
        assert!(s[flat] < 0.0, "{strategy}: flat cell must be negative");
    }
}

#[test]
fn vorticity_matches_taylor_green_exact_solution() {
    use dfg_mesh::analytic::taylor_green;
    let tau = std::f32::consts::TAU;
    let n = 24usize;
    let mesh = RectilinearMesh::uniform([n, n, 4], [0.0; 3], [tau / n as f32; 3]);
    let mut fields = FieldSet::new(mesh.ncells());
    let (x, y, z) = mesh.coord_arrays();
    fields
        .insert_scalar(
            "u",
            mesh.sample(|x, y, z| taylor_green::velocity(x, y, z)[0]),
        )
        .unwrap();
    fields
        .insert_scalar(
            "v",
            mesh.sample(|x, y, z| taylor_green::velocity(x, y, z)[1]),
        )
        .unwrap();
    fields
        .insert_scalar(
            "w",
            mesh.sample(|x, y, z| taylor_green::velocity(x, y, z)[2]),
        )
        .unwrap();
    fields.insert_scalar("x", x).unwrap();
    fields.insert_scalar("y", y).unwrap();
    fields.insert_scalar("z", z).unwrap();
    fields.insert_small("dims", mesh.dims_buffer());
    let mut engine = cpu_engine();
    let out = engine
        .derive(
            Workload::VorticityMagnitude.source(),
            &fields,
            Strategy::Fusion,
        )
        .unwrap()
        .field
        .unwrap();
    let s = out.as_scalar().unwrap();
    for j in 2..n - 2 {
        for i in 2..n - 2 {
            let idx = mesh.index(i, j, 2);
            let c = mesh.cell_center(i, j, 2);
            let exact = taylor_green::vorticity(c[0], c[1], c[2])[2].abs();
            assert!(
                (s[idx] - exact).abs() < 0.06,
                "({i},{j}): {} vs {exact}",
                s[idx]
            );
        }
    }
}

#[test]
fn device_seconds_order_fusion_fastest_roundtrip_slowest() {
    // Figure 5's headline shape, from the virtual clock, at paper scale in
    // model mode.
    let mut engine = Engine::with_options(
        DeviceProfile::nvidia_m2050(),
        EngineOptions {
            mode: ExecMode::Model,
            ..Default::default()
        },
    );
    let fields = FieldSet::virtual_rt([192, 192, 256]);
    for workload in Workload::ALL {
        let rt = engine
            .derive(workload.source(), &fields, Strategy::Roundtrip)
            .unwrap()
            .device_seconds();
        let st = engine
            .derive(workload.source(), &fields, Strategy::Staged)
            .unwrap()
            .device_seconds();
        let fu = engine
            .derive(workload.source(), &fields, Strategy::Fusion)
            .unwrap()
            .device_seconds();
        let rf = engine
            .run_reference(workload, &fields)
            .unwrap()
            .device_seconds();
        assert!(fu < st, "{workload}: fusion {fu} !< staged {st}");
        assert!(st < rt, "{workload}: staged {st} !< roundtrip {rt}");
        assert!(
            fu < 2.0 * rf,
            "{workload}: fusion {fu} not competitive with reference {rf}"
        );
    }
}

#[test]
fn gpu_beats_cpu_when_it_fits() {
    let fields = FieldSet::virtual_rt([192, 192, 256]);
    let mut gpu = Engine::with_options(
        DeviceProfile::nvidia_m2050(),
        EngineOptions {
            mode: ExecMode::Model,
            ..Default::default()
        },
    );
    let mut cpu = Engine::with_options(
        DeviceProfile::intel_x5660(),
        EngineOptions {
            mode: ExecMode::Model,
            ..Default::default()
        },
    );
    for workload in Workload::ALL {
        for strategy in Strategy::ALL {
            let g = gpu.derive(workload.source(), &fields, strategy).unwrap();
            let c = cpu.derive(workload.source(), &fields, strategy).unwrap();
            assert!(
                g.device_seconds() <= c.device_seconds() * 1.05,
                "{workload}/{strategy}: GPU {} slower than CPU {}",
                g.device_seconds(),
                c.device_seconds()
            );
        }
    }
}

#[test]
fn derive_spec_reusable_across_runs() {
    let fields = small_rt_fields([4, 4, 4]);
    let spec = compile(Workload::VelocityMagnitude.source()).unwrap();
    let mut engine = cpu_engine();
    let a = engine
        .derive_spec(&spec, &fields, Strategy::Staged)
        .unwrap();
    let b = engine
        .derive_spec(&spec, &fields, Strategy::Staged)
        .unwrap();
    assert_eq!(a.table2_row(), b.table2_row());
    assert_eq!(a.field, b.field);
}

#[test]
fn roundtrip_dedup_ablation_reduces_uploads() {
    // DESIGN.md D1: per-port uploads (paper) vs deduplicated uploads.
    let fields = small_rt_fields([6, 5, 4]);
    let mut paper = cpu_engine();
    let mut dedup = Engine::with_options(
        DeviceProfile::intel_x5660(),
        EngineOptions {
            roundtrip_dedup_uploads: true,
            ..Default::default()
        },
    );
    // VelMag: u*u style kernels drop from 11 to 8 uploads.
    let p = paper
        .derive(
            Workload::VelocityMagnitude.source(),
            &fields,
            Strategy::Roundtrip,
        )
        .unwrap();
    let d = dedup
        .derive(
            Workload::VelocityMagnitude.source(),
            &fields,
            Strategy::Roundtrip,
        )
        .unwrap();
    assert_eq!(p.table2_row().0, 11);
    assert_eq!(d.table2_row().0, 8);
    // Results are identical either way.
    assert_eq!(p.field, d.field);
    // And the deduped variant moves strictly less data.
    assert!(d.device_seconds() < p.device_seconds());
}

#[test]
fn streamed_fusion_bit_identical_to_fusion() {
    // §VI future work: streaming must not change results — z-slab halos
    // give the same stencil arithmetic as the single-pass kernel.
    let fields = small_rt_fields([8, 7, 9]);
    let mut engine = cpu_engine();
    for workload in Workload::ALL {
        let fused = engine
            .derive(workload.source(), &fields, Strategy::Fusion)
            .unwrap()
            .field
            .unwrap();
        // Budget small enough to force several slabs: each slab holds
        // 8 arrays/cell; 3 z-layers of 8x7 cells.
        let budget = 8 * 4 * (8 * 7 * 3) as u64;
        let streamed = engine
            .derive_streamed(workload.source(), &fields, Some(budget))
            .unwrap();
        assert!(
            streamed.high_water_bytes() <= budget,
            "{workload}: streamed peak {} exceeds budget {budget}",
            streamed.high_water_bytes()
        );
        let streamed = streamed.field.unwrap();
        for i in 0..fused.data.len() {
            assert_eq!(
                fused.data[i].to_bits(),
                streamed.data[i].to_bits(),
                "{workload} at {i}: {} vs {}",
                fused.data[i],
                streamed.data[i]
            );
        }
    }
}

#[test]
fn streaming_completes_cases_fusion_cannot() {
    // A Figure 5 "FAILED" case: Q-criterion on the largest Table I grid
    // exceeds the M2050's usable memory under single-pass fusion, but
    // streams fine. (Model mode needs a concrete dims buffer to slab.)
    let dims = [192usize, 192, 3072];
    let mut fields = FieldSet::virtual_rt(dims);
    fields.insert_small("dims", vec![dims[0] as f32, dims[1] as f32, dims[2] as f32]);
    let mut gpu = Engine::with_options(
        DeviceProfile::nvidia_m2050(),
        EngineOptions {
            mode: ExecMode::Model,
            ..Default::default()
        },
    );
    let src = Workload::QCriterion.source();
    assert!(gpu
        .derive(src, &fields, Strategy::Fusion)
        .unwrap_err()
        .is_out_of_memory());
    let streamed = gpu.derive_streamed(src, &fields, None).unwrap();
    assert!(streamed.high_water_bytes() <= gpu.device().global_mem_bytes);
    // Streaming pays for its flexibility with extra transfers (the halo
    // layers) but stays within ~2x of what unconstrained fusion would cost.
    let mut cpu_like = Engine::with_options(
        DeviceProfile::intel_x5660(),
        EngineOptions {
            mode: ExecMode::Model,
            ..Default::default()
        },
    );
    let unconstrained = cpu_like.derive(src, &fields, Strategy::Fusion).unwrap();
    let gpu_over_cpu = streamed.profile.count(dfg_ocl::EventKind::KernelExec) as f64;
    assert!(gpu_over_cpu > 1.0, "streaming must use multiple slabs");
    assert!(unconstrained.device_seconds() > 0.0);
}

#[test]
fn streaming_rejects_impossible_budget() {
    let fields = small_rt_fields([8, 8, 8]);
    let mut engine = cpu_engine();
    let err = engine
        .derive_streamed(Workload::QCriterion.source(), &fields, Some(64))
        .unwrap_err();
    assert!(err.is_out_of_memory());
}

#[test]
fn streaming_elementwise_chunks_without_dims() {
    let fields = small_rt_fields([6, 6, 6]);
    let mut engine = cpu_engine();
    let fused = engine
        .derive(
            Workload::VelocityMagnitude.source(),
            &fields,
            Strategy::Fusion,
        )
        .unwrap()
        .field
        .unwrap();
    // Chunk the 216-cell array into pieces of at most 50 cells (4 arrays).
    let streamed = engine
        .derive_streamed(
            Workload::VelocityMagnitude.source(),
            &fields,
            Some(4 * 4 * 50),
        )
        .unwrap();
    let (w, _r, k) = streamed.table2_row();
    assert!(k >= 5, "expected >= 5 chunks, got {k} kernels");
    assert!(w >= 3 * k, "each chunk re-uploads its three inputs");
    assert_eq!(streamed.field.unwrap().data, fused.data);
}

#[test]
fn curl_sugar_equals_fig3b_vorticity() {
    // `norm(curl(...))` must compute exactly what the hand-written Figure
    // 3B program computes, under every strategy.
    let fields = small_rt_fields([7, 6, 5]);
    let mut engine = cpu_engine();
    let reference = engine
        .derive(
            Workload::VorticityMagnitude.source(),
            &fields,
            Strategy::Fusion,
        )
        .unwrap()
        .field
        .unwrap();
    for strategy in Strategy::ALL {
        let sugar = engine
            .derive(
                "w_mag = norm(curl(u, v, w, dims, x, y, z))",
                &fields,
                strategy,
            )
            .unwrap()
            .field
            .unwrap();
        for i in 0..reference.data.len() {
            assert!(
                (sugar.data[i] - reference.data[i]).abs()
                    <= 1e-5 * reference.data[i].abs().max(1.0),
                "{strategy} at {i}: {} vs {}",
                sugar.data[i],
                reference.data[i]
            );
        }
    }
}

#[test]
fn divergence_of_solenoidal_taylor_green_is_small() {
    use dfg_mesh::analytic::taylor_green;
    let tau = std::f32::consts::TAU;
    let n = 20usize;
    let mesh = RectilinearMesh::uniform([n, n, 4], [0.0; 3], [tau / n as f32; 3]);
    let mut fields = FieldSet::new(mesh.ncells());
    let (x, y, z) = mesh.coord_arrays();
    fields
        .insert_scalar(
            "u",
            mesh.sample(|x, y, z| taylor_green::velocity(x, y, z)[0]),
        )
        .unwrap();
    fields
        .insert_scalar(
            "v",
            mesh.sample(|x, y, z| taylor_green::velocity(x, y, z)[1]),
        )
        .unwrap();
    fields
        .insert_scalar(
            "w",
            mesh.sample(|x, y, z| taylor_green::velocity(x, y, z)[2]),
        )
        .unwrap();
    fields.insert_scalar("x", x).unwrap();
    fields.insert_scalar("y", y).unwrap();
    fields.insert_scalar("z", z).unwrap();
    fields.insert_small("dims", mesh.dims_buffer());
    let mut engine = cpu_engine();
    let out = engine
        .derive(
            "d = divergence(u, v, w, dims, x, y, z)",
            &fields,
            Strategy::Fusion,
        )
        .unwrap()
        .field
        .unwrap();
    // Taylor–Green is divergence-free; discrete divergence in the interior
    // must be near zero (f32 stencil error only).
    let s = out.as_scalar().unwrap();
    for j in 2..n - 2 {
        for i in 2..n - 2 {
            let idx = mesh.index(i, j, 2);
            assert!(s[idx].abs() < 0.05, "div at ({i},{j}) = {}", s[idx]);
        }
    }
}

#[test]
fn helicity_and_enstrophy_expressions_run() {
    // Real derived-field staples built from the extended function library.
    let fields = small_rt_fields([8, 8, 8]);
    let mut engine = cpu_engine();
    let helicity = engine
        .derive(
            "h = dot(vector(u, v, w), curl(u, v, w, dims, x, y, z))",
            &fields,
            Strategy::Fusion,
        )
        .unwrap()
        .field
        .unwrap();
    assert!(helicity.as_scalar().unwrap().iter().any(|&v| v != 0.0));
    let enstrophy = engine
        .derive(
            "ens = 0.5 * pow(norm(curl(u, v, w, dims, x, y, z)), 2)",
            &fields,
            Strategy::Staged,
        )
        .unwrap()
        .field
        .unwrap();
    assert!(enstrophy.as_scalar().unwrap().iter().all(|&v| v >= 0.0));
}

#[test]
fn trig_functions_execute_correctly() {
    let n = 16usize;
    let mut fields = FieldSet::new(n);
    let vals: Vec<f32> = (0..n).map(|i| i as f32 * 0.3 + 0.1).collect();
    fields.insert_scalar("t", vals.clone()).unwrap();
    let mut engine = cpu_engine();
    let out = engine
        .derive(
            "r = sin(t)*sin(t) + cos(t)*cos(t) + exp(log(t)) - t",
            &fields,
            Strategy::Fusion,
        )
        .unwrap()
        .field
        .unwrap();
    for (i, &v) in out.as_scalar().unwrap().iter().enumerate() {
        assert!((v - 1.0).abs() < 1e-5, "identity failed at {i}: {v}");
    }
}

#[test]
fn derive_many_shares_work_across_outputs() {
    // Vorticity magnitude AND the intermediate w_x, w_y in one pass.
    let fields = small_rt_fields([7, 6, 5]);
    let mut engine = cpu_engine();
    for strategy in Strategy::ALL {
        let (outputs, report) = engine
            .derive_many(
                Workload::VorticityMagnitude.source(),
                &["w_mag", "w_x", "w_y"],
                &fields,
                strategy,
            )
            .unwrap_or_else(|e| panic!("{strategy}: {e}"));
        assert_eq!(outputs.len(), 3);
        assert_eq!(outputs[0].0, "w_mag");
        // Cross-check each output against the single-output path.
        for (name, field) in &outputs {
            let single = engine
                .derive(
                    &format!(
                        "{}\nfinal_alias = {name}\n",
                        Workload::VorticityMagnitude.source()
                    ),
                    &fields,
                    strategy,
                )
                .unwrap()
                .field
                .unwrap();
            assert_eq!(field.data, single.data, "{strategy}/{name}");
        }
        // Fusion computes all three in a single kernel launch.
        if strategy == Strategy::Fusion {
            assert_eq!(report.table2_row(), (7, 1, 1), "one kernel, one read");
            let src = report.generated_source.as_deref().unwrap();
            assert!(src.contains("out_w_mag[idx]"), "{src}");
            assert!(src.contains("out_w_x[idx]"));
        }
        // Staged reads one buffer per output but runs the shared 18-kernel
        // schedule once.
        if strategy == Strategy::Staged {
            assert_eq!(report.table2_row(), (7, 3, 18));
        }
    }
}

#[test]
fn derive_many_rejects_unknown_outputs() {
    let fields = small_rt_fields([4, 4, 4]);
    let mut engine = cpu_engine();
    let err = engine
        .derive_many(
            Workload::VelocityMagnitude.source(),
            &["v_mag", "enstrophy"],
            &fields,
            Strategy::Fusion,
        )
        .unwrap_err();
    assert!(matches!(err, crate::EngineError::NoSuchOutput { ref name } if name == "enstrophy"));
}

#[test]
fn derive_many_single_output_equals_derive() {
    let fields = small_rt_fields([5, 5, 5]);
    let mut engine = cpu_engine();
    let (outputs, _) = engine
        .derive_many(
            Workload::QCriterion.source(),
            &["q_crit"],
            &fields,
            Strategy::Fusion,
        )
        .unwrap();
    let single = engine
        .derive(Workload::QCriterion.source(), &fields, Strategy::Fusion)
        .unwrap()
        .field
        .unwrap();
    assert_eq!(outputs[0].1.data, single.data);
}

#[test]
fn executors_surface_injected_device_failures_cleanly() {
    // Fault injection: fail the k-th allocation for every k the execution
    // performs; the executor must return an error (never panic) and the
    // engine-level invariant — a fresh context per run — keeps later runs
    // clean. Exercised against all three strategies.
    use dfg_dataflow::Schedule;
    use dfg_ocl::Context;

    let fields = small_rt_fields([5, 4, 3]);
    let spec = compile(Workload::QCriterion.source()).unwrap();
    let sched = Schedule::new(&spec).unwrap();
    for strategy in Strategy::ALL {
        // Count allocations in a clean run first.
        let mut probe = Context::new(DeviceProfile::intel_x5660(), ExecMode::Real);
        match strategy {
            Strategy::Roundtrip => {
                crate::strategies::run_roundtrip(&spec, &sched, &fields, &mut probe, false)
                    .unwrap();
            }
            Strategy::Staged => {
                crate::strategies::run_staged(&spec, &sched, &fields, &mut probe).unwrap();
            }
            Strategy::Fusion => {
                crate::strategies::run_fusion(&spec, &fields, &mut probe, "t").unwrap();
            }
        }
        // Inject failures at a spread of allocation indices.
        for k in [1usize, 2, 5, 8] {
            let mut ctx = Context::new(DeviceProfile::intel_x5660(), ExecMode::Real);
            ctx.fail_alloc_in(k);
            let result = match strategy {
                Strategy::Roundtrip => {
                    crate::strategies::run_roundtrip(&spec, &sched, &fields, &mut ctx, false)
                        .map(|_| ())
                }
                Strategy::Staged => {
                    crate::strategies::run_staged(&spec, &sched, &fields, &mut ctx).map(|_| ())
                }
                Strategy::Fusion => {
                    crate::strategies::run_fusion(&spec, &fields, &mut ctx, "t").map(|_| ())
                }
            };
            let err = result.expect_err("injected failure must surface");
            assert!(
                matches!(err, crate::EngineError::Ocl(_)),
                "{strategy} k={k}: unexpected error {err}"
            );
        }
    }
}

#[test]
fn logical_operators_execute() {
    let n = 8usize;
    let mut fields = FieldSet::new(n);
    fields
        .insert_scalar("t", (0..n).map(|i| i as f32 - 3.0).collect())
        .unwrap();
    let mut engine = cpu_engine();
    for strategy in Strategy::ALL {
        // In (-2, 2) exclusive, via and(); outside [-3, 3], via not(or()).
        let out = engine
            .derive(
                "band = and(t > -2, t < 2)\nouter = not(or(t >= -3, t <= 3))\nr = band + 2 * outer",
                &fields,
                strategy,
            )
            .unwrap()
            .field
            .unwrap();
        let s = out.as_scalar().unwrap();
        // t = -3..4: band true for t in {-1, 0, 1}; outer always false
        // (everything is >= -3 or <= 3).
        let expected = [0.0f32, 0.0, 1.0, 1.0, 1.0, 0.0, 0.0, 0.0];
        assert_eq!(s, expected, "{strategy}");
    }
}

#[test]
fn engine_caches_compiled_programs() {
    let fields = small_rt_fields([4, 4, 4]);
    let mut engine = cpu_engine();
    assert_eq!(engine.compile_count(), 0);
    for _ in 0..5 {
        engine
            .derive(Workload::QCriterion.source(), &fields, Strategy::Fusion)
            .unwrap();
    }
    assert_eq!(engine.compile_count(), 1, "identical source compiles once");
    engine
        .derive(
            Workload::VelocityMagnitude.source(),
            &fields,
            Strategy::Staged,
        )
        .unwrap();
    assert_eq!(engine.compile_count(), 2);
    // Errors are not cached as successes.
    assert!(engine
        .derive("r = sqrt(", &fields, Strategy::Fusion)
        .is_err());
    assert!(engine
        .derive("r = sqrt(", &fields, Strategy::Fusion)
        .is_err());
    assert_eq!(engine.compile_count(), 2);
}

#[test]
fn full_cse_ablation_reduces_qcrit_kernels_without_changing_results() {
    // DESIGN.md D2 ablation: the paper's limited CSE keeps commutative
    // duplicates like s_3 = 0.5*(dv[0] + du[1]) (= s_1). Full value
    // numbering merges them.
    let fields = small_rt_fields([6, 5, 4]);
    let mut limited = cpu_engine();
    let mut full = Engine::with_options(
        DeviceProfile::intel_x5660(),
        EngineOptions {
            full_cse: true,
            ..Default::default()
        },
    );
    let src = Workload::QCriterion.source();
    let a = limited.derive(src, &fields, Strategy::Staged).unwrap();
    let b = full.derive(src, &fields, Strategy::Staged).unwrap();
    let (_, _, k_limited) = a.table2_row();
    let (_, _, k_full) = b.table2_row();
    assert_eq!(k_limited, 67, "paper count");
    assert!(
        k_full < k_limited,
        "full CSE must launch fewer kernels: {k_full} vs {k_limited}"
    );
    // Bit-identical derived field (f32 +/* are commutative).
    assert_eq!(
        a.field
            .unwrap()
            .data
            .iter()
            .map(|v| v.to_bits())
            .collect::<Vec<_>>(),
        b.field
            .unwrap()
            .data
            .iter()
            .map(|v| v.to_bits())
            .collect::<Vec<_>>()
    );
    // Report the savings where a human will see them on failure.
    println!("Q-crit staged kernels: limited CSE {k_limited}, full CSE {k_full}");
}

// ---------------------------------------------------------------------------
// Persistent sessions: resident fields, kernel cache, buffer pooling.
// ---------------------------------------------------------------------------

mod session {
    use super::*;
    use dfg_ocl::EventKind;
    use dfg_trace::Tracer;

    /// A 100-cycle in-situ fusion loop with static coordinates and velocity
    /// updated each cycle: unchanged fields never re-upload and fusion
    /// codegen/compile happens exactly once (the tentpole's acceptance
    /// criterion).
    #[test]
    fn hundred_cycle_session_amortizes_uploads_and_codegen() {
        let mut fields = small_rt_fields([6, 5, 4]);
        let mut engine = cpu_engine();
        let mut session = engine.session();
        let src = Workload::VelocityMagnitude.source();
        let n = fields.ncells();
        for cycle in 0..100u32 {
            if cycle > 0 {
                fields.update_scalar("u", &vec![cycle as f32; n]).unwrap();
            }
            let report = session.derive(src, &fields, Strategy::Fusion).unwrap();
            assert!(report.field.is_some());
        }
        let stats = session.stats().clone();
        assert_eq!(stats.cycles, 100);
        assert_eq!(stats.codegen_compiles, 1, "one codegen for 100 cycles");
        assert_eq!(stats.codegen_cached, 99);
        // vel_mag reads u, v, w: u uploads every cycle (mutated), v and w
        // once each — zero re-uploads of unchanged fields.
        assert_eq!(stats.uploads, 100 + 1 + 1);
        assert_eq!(stats.uploads_skipped, 99 * 2);
        let stats = session.end();
        assert_eq!(stats.cycles, 100);
    }

    /// Mutating one field triggers exactly one re-upload next cycle.
    #[test]
    fn mutating_one_field_reuploads_exactly_that_field() {
        let mut fields = small_rt_fields([4, 4, 4]);
        let mut engine = cpu_engine();
        let mut session = engine.session();
        let src = Workload::VelocityMagnitude.source();
        session.derive(src, &fields, Strategy::Fusion).unwrap();
        let uploads_before = session.stats().uploads;

        fields.touch("v");
        let report = session.derive(src, &fields, Strategy::Fusion).unwrap();
        assert_eq!(session.stats().uploads - uploads_before, 1);
        // The profile confirms it: one h2d event in the whole cycle.
        assert_eq!(report.profile.count(EventKind::HostToDevice), 1);
    }

    /// Session results are identical to one-shot results for every strategy.
    #[test]
    fn session_results_match_one_shot_per_strategy() {
        let fields = small_rt_fields([6, 5, 4]);
        for workload in Workload::ALL {
            for strategy in Strategy::ALL {
                let mut engine = cpu_engine();
                let one_shot = engine
                    .derive(workload.source(), &fields, strategy)
                    .unwrap()
                    .field
                    .unwrap();
                let mut session = engine.session();
                for _ in 0..3 {
                    let again = session
                        .derive(workload.source(), &fields, strategy)
                        .unwrap()
                        .field
                        .unwrap();
                    assert_eq!(
                        one_shot.data, again.data,
                        "{workload}/{strategy}: session result drifted"
                    );
                }
            }
        }
    }

    /// Model vs. Real event-count parity for a multi-cycle session: the
    /// modeled protocol (counts and virtual clock) must not depend on
    /// whether data movement actually happens.
    #[test]
    fn model_and_real_sessions_agree_on_events_and_clock() {
        let run = |mode: ExecMode| {
            let dims = [6, 5, 4];
            let mut fields = match mode {
                ExecMode::Real => small_rt_fields(dims),
                ExecMode::Model => FieldSet::virtual_rt(dims),
            };
            let mut engine = Engine::with_options(
                DeviceProfile::intel_x5660(),
                EngineOptions {
                    mode,
                    ..Default::default()
                },
            );
            let mut session = engine.session();
            let src = Workload::VelocityMagnitude.source();
            let n = fields.ncells();
            let mut per_cycle = Vec::new();
            for cycle in 0..5u32 {
                if cycle > 0 {
                    match mode {
                        ExecMode::Real => {
                            fields.update_scalar("u", &vec![cycle as f32; n]).unwrap()
                        }
                        ExecMode::Model => {
                            fields.touch("u");
                        }
                    }
                }
                for strategy in [Strategy::Fusion, Strategy::Staged] {
                    let report = session.derive(src, &fields, strategy).unwrap();
                    per_cycle.push((
                        report.table2_row(),
                        report.high_water_bytes(),
                        report.device_seconds(),
                    ));
                }
            }
            (per_cycle, session.stats().clone())
        };
        let (real, real_stats) = run(ExecMode::Real);
        let (model, model_stats) = run(ExecMode::Model);
        assert_eq!(real_stats, model_stats, "session counters diverge");
        assert_eq!(real.len(), model.len());
        for (i, (r, m)) in real.iter().zip(&model).enumerate() {
            assert_eq!(r.0, m.0, "cycle {i}: event counts");
            assert_eq!(r.1, m.1, "cycle {i}: high water");
            assert!((r.2 - m.2).abs() < 1e-15, "cycle {i}: device seconds");
        }
    }

    /// The session's pooled context recycles transient buffers: after the
    /// first cycle, fusion's output buffer comes from the pool.
    #[test]
    fn session_pool_recycles_transient_buffers() {
        let fields = small_rt_fields([4, 4, 4]);
        let mut engine = cpu_engine();
        let mut session = engine.session();
        let src = Workload::VelocityMagnitude.source();
        session.derive(src, &fields, Strategy::Fusion).unwrap();
        assert_eq!(session.pool_hits(), 0, "first cycle allocates fresh");
        session.derive(src, &fields, Strategy::Fusion).unwrap();
        assert!(session.pool_hits() >= 1, "second cycle reuses the pool");
    }

    /// Session trace spans tag cached work, and each cycle's report trace
    /// is scoped to that cycle.
    #[test]
    fn session_trace_tags_cached_work_per_cycle() {
        let fields = small_rt_fields([4, 4, 4]);
        let mut engine = cpu_engine();
        engine.set_tracer(Tracer::new());
        let mut session = engine.session();
        let src = Workload::VelocityMagnitude.source();
        let first = session.derive(src, &fields, Strategy::Fusion).unwrap();
        let second = session.derive(src, &fields, Strategy::Fusion).unwrap();
        let names = |trace: &dfg_trace::Trace| -> Vec<String> {
            trace.spans().iter().map(|s| s.name.clone()).collect()
        };
        let first = names(&first.trace.unwrap());
        let second = names(&second.trace.unwrap());
        assert!(first.contains(&"fusion.codegen".to_string()));
        assert!(!first.contains(&"codegen.cached".to_string()));
        assert!(second.contains(&"codegen.cached".to_string()));
        assert!(second.contains(&"upload.skipped".to_string()));
        assert!(!second.contains(&"fusion.codegen".to_string()));
        assert_eq!(
            second.iter().filter(|n| *n == "derive").count(),
            1,
            "per-cycle trace holds exactly this cycle's root"
        );
    }

    /// Satellite regression: one-shot `derive` reports are scoped per run —
    /// a second derive's trace does not carry the first run's spans.
    #[test]
    fn one_shot_reports_scope_traces_per_run() {
        let fields = small_rt_fields([4, 4, 4]);
        let mut engine = cpu_engine();
        engine.set_tracer(Tracer::new());
        let src = Workload::VelocityMagnitude.source();
        let a = engine.derive(src, &fields, Strategy::Fusion).unwrap();
        let b = engine.derive(src, &fields, Strategy::Fusion).unwrap();
        let roots = |t: &dfg_trace::Trace| t.spans().iter().filter(|s| s.name == "derive").count();
        assert_eq!(roots(&a.trace.unwrap()), 1);
        assert_eq!(roots(&b.trace.unwrap()), 1, "second report is per-run");
        // The engine's tracer still accumulates the whole history.
        assert_eq!(roots(&engine.tracer().unwrap().snapshot()), 2);
    }

    /// Streamed derivation through a session caches codegen and matches the
    /// one-shot streamed result.
    #[test]
    fn session_streamed_caches_codegen() {
        let fields = small_rt_fields([6, 5, 4]);
        let mut engine = cpu_engine();
        let budget = Some(20 * 1024);
        let one_shot = engine
            .derive_streamed(Workload::QCriterion.source(), &fields, budget)
            .unwrap()
            .field
            .unwrap();
        let mut session = engine.session();
        for _ in 0..3 {
            let got = session
                .derive_streamed(Workload::QCriterion.source(), &fields, budget)
                .unwrap()
                .field
                .unwrap();
            assert_eq!(one_shot.data, got.data);
        }
        assert_eq!(session.stats().codegen_compiles, 1);
        assert_eq!(session.stats().codegen_cached, 2);
        assert!(session.pool_hits() > 0, "slab buffers recycle via the pool");
    }

    /// derive_many through a session: amortized multi-output fusion.
    #[test]
    fn session_derive_many_amortizes() {
        let fields = small_rt_fields([5, 5, 5]);
        let mut engine = cpu_engine();
        let source = format!(
            "{}\nw_mag = norm(curl(u, v, w, dims, x, y, z))\n",
            Workload::QCriterion.source().trim_end()
        );
        let source = source.as_str();
        let (one_shot, _) = engine
            .derive_many(source, &["w_mag", "q_crit"], &fields, Strategy::Fusion)
            .unwrap();
        let mut session = engine.session();
        for _ in 0..3 {
            let (got, _) = session
                .derive_many(source, &["w_mag", "q_crit"], &fields, Strategy::Fusion)
                .unwrap();
            assert_eq!(got.len(), 2);
            for ((n0, f0), (n1, f1)) in one_shot.iter().zip(&got) {
                assert_eq!(n0, n1);
                assert_eq!(f0.data, f1.data);
            }
        }
        assert_eq!(session.stats().codegen_compiles, 1);
        assert_eq!(
            session.stats().uploads,
            7,
            "u v w x y z dims upload once for three cycles"
        );
    }
}

mod branch_parallel {
    use super::*;
    use dfg_trace::Tracer;

    fn bp_engine() -> Engine {
        Engine::with_options(
            DeviceProfile::intel_x5660(),
            EngineOptions {
                branch_parallel: true,
                ..Default::default()
            },
        )
    }

    fn assert_bits_eq(a: &[f32], b: &[f32], what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: length");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: lane {i} ({x} vs {y})");
        }
    }

    /// Branch-parallel staged execution produces bit-identical fields,
    /// identical Table II counts, and identical total device seconds to
    /// the serial walk (the event *order* may differ; the set may not).
    #[test]
    fn outputs_bit_identical_to_serial_staged() {
        let fields = small_rt_fields([8, 7, 6]);
        for workload in Workload::ALL {
            let serial = cpu_engine()
                .derive(workload.source(), &fields, Strategy::Staged)
                .unwrap();
            let par = bp_engine()
                .derive(workload.source(), &fields, Strategy::Staged)
                .unwrap();
            assert_eq!(
                par.table2_row(),
                workload.paper_table2(Strategy::Staged),
                "{workload}: Table II counts"
            );
            assert!(
                (serial.device_seconds() - par.device_seconds()).abs() < 1e-15,
                "{workload}: total modeled device time"
            );
            assert_bits_eq(
                &serial.field.unwrap().data,
                &par.field.unwrap().data,
                &format!("{workload}"),
            );
        }
    }

    /// The pool dispatch itself is invisible: running the branch-parallel
    /// executor with the thread-local serial override (everything inline on
    /// one thread) yields the same bits, the same event stream in the same
    /// order, and the same virtual clock.
    #[test]
    fn pool_and_inline_execution_agree_exactly() {
        let fields = small_rt_fields([6, 5, 4]);
        for workload in Workload::ALL {
            let pooled = bp_engine()
                .derive(workload.source(), &fields, Strategy::Staged)
                .unwrap();
            let inline = dfg_exec::with_serial(|| {
                bp_engine()
                    .derive(workload.source(), &fields, Strategy::Staged)
                    .unwrap()
            });
            assert_bits_eq(
                &pooled.field.unwrap().data,
                &inline.field.unwrap().data,
                &format!("{workload}: field"),
            );
            let (pe, ie) = (&pooled.profile.events, &inline.profile.events);
            assert_eq!(pe.len(), ie.len(), "{workload}: event count");
            for (a, b) in pe.iter().zip(ie) {
                assert_eq!(a.label, b.label, "{workload}: event order");
                assert_eq!(a.kind, b.kind, "{workload}: event kinds");
                assert_eq!(a.t_start.to_bits(), b.t_start.to_bits());
                assert_eq!(a.t_end.to_bits(), b.t_end.to_bits());
            }
        }
    }

    /// Every strategy is bit-stable under the serial override: parallel
    /// chunked kernels use globally-indexed chunks, so the thread count
    /// never leaks into results.
    #[test]
    fn all_strategies_bit_identical_under_serial_override() {
        let fields = small_rt_fields([8, 7, 6]);
        for workload in Workload::ALL {
            for strategy in Strategy::ALL {
                let par = cpu_engine()
                    .derive(workload.source(), &fields, strategy)
                    .unwrap();
                let ser = dfg_exec::with_serial(|| {
                    cpu_engine()
                        .derive(workload.source(), &fields, strategy)
                        .unwrap()
                });
                assert_bits_eq(
                    &par.field.unwrap().data,
                    &ser.field.unwrap().data,
                    &format!("{workload}/{strategy}"),
                );
            }
        }
    }

    /// Model mode reproduces real mode's event stream and virtual clock
    /// under branch-parallel dispatch (no bodies run, same protocol).
    #[test]
    fn model_mode_matches_real_under_branch_parallel() {
        let dims = [6, 5, 4];
        let run = |mode: ExecMode| {
            let fields = match mode {
                ExecMode::Real => small_rt_fields(dims),
                ExecMode::Model => FieldSet::virtual_rt(dims),
            };
            let mut engine = Engine::with_options(
                DeviceProfile::intel_x5660(),
                EngineOptions {
                    mode,
                    branch_parallel: true,
                    ..Default::default()
                },
            );
            let mut out = Vec::new();
            for workload in Workload::ALL {
                let r = engine
                    .derive(workload.source(), &fields, Strategy::Staged)
                    .unwrap();
                let labels: Vec<String> =
                    r.profile.events.iter().map(|e| e.label.clone()).collect();
                out.push((
                    r.table2_row(),
                    r.high_water_bytes(),
                    r.device_seconds(),
                    labels,
                ));
            }
            out
        };
        let real = run(ExecMode::Real);
        let model = run(ExecMode::Model);
        for (rw, (r, m)) in Workload::ALL.iter().zip(real.iter().zip(&model)) {
            assert_eq!(r.0, m.0, "{rw}: counts");
            assert_eq!(r.1, m.1, "{rw}: high water");
            assert!((r.2 - m.2).abs() < 1e-15, "{rw}: device seconds");
            assert_eq!(r.3, m.3, "{rw}: event order");
        }
    }

    /// Sessions running branch-parallel agree with one-shot serial staged
    /// across cycles, and keep the resident-bytes invariant.
    #[test]
    fn session_branch_parallel_matches_serial_one_shot() {
        let fields = small_rt_fields([6, 5, 4]);
        for workload in Workload::ALL {
            let baseline = cpu_engine()
                .derive(workload.source(), &fields, Strategy::Staged)
                .unwrap()
                .field
                .unwrap();
            let mut engine = bp_engine();
            let mut session = engine.session();
            for cycle in 0..3 {
                let again = session
                    .derive(workload.source(), &fields, Strategy::Staged)
                    .unwrap()
                    .field
                    .unwrap();
                assert_bits_eq(
                    &baseline.data,
                    &again.data,
                    &format!("{workload} cycle {cycle}"),
                );
            }
        }
    }

    /// Branch-parallel dispatch is visible in traces: `exec.level` spans
    /// carry the fan-out and wrap one `exec.task` per batched kernel, and
    /// the serial executor emits none of them.
    #[test]
    fn exec_spans_surface_level_fanout() {
        let fields = small_rt_fields([6, 5, 4]);
        let mut engine = bp_engine();
        engine.set_tracer(Tracer::new());
        let report = engine
            .derive(
                Workload::VorticityMagnitude.source(),
                &fields,
                Strategy::Staged,
            )
            .unwrap();
        let trace = report.trace.expect("tracer attached");
        let levels: Vec<_> = trace
            .spans()
            .iter()
            .filter(|s| s.name == "exec.level")
            .collect();
        assert!(!levels.is_empty(), "vorticity has multi-kernel levels");
        assert!(
            levels
                .iter()
                .any(|s| s.meta_u64("fanout").unwrap_or(0) >= 2),
            "at least one level fans out to 2+ kernels"
        );
        for s in &levels {
            assert!(s.meta_get("level").is_some());
            assert!(s.meta_get("queue_depth").is_some());
            assert!(
                s.virt_start.is_some() && s.virt_end.is_some(),
                "level spans carry virtual-clock endpoints"
            );
        }
        let tasks = trace.spans().iter().filter(|s| s.name == "exec.task");
        let fanout_total: u64 = levels
            .iter()
            .map(|s| s.meta_u64("fanout").unwrap_or(0))
            .sum();
        assert_eq!(
            tasks.count() as u64,
            fanout_total,
            "one task span per batched kernel"
        );
        // Serial engine: no exec.* spans at all.
        let mut serial = cpu_engine();
        serial.set_tracer(Tracer::new());
        let serial_report = serial
            .derive(
                Workload::VorticityMagnitude.source(),
                &fields,
                Strategy::Staged,
            )
            .unwrap();
        assert!(serial_report
            .trace
            .unwrap()
            .spans()
            .iter()
            .all(|s| !s.name.starts_with("exec.")));
    }
}
