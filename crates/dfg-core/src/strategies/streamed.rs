//! The *streamed fusion* execution strategy — the paper's §VI future work
//! ("we plan to investigate the runtime performance of our execution
//! strategies in a streaming context"), implemented.
//!
//! The mesh is processed in z-slabs. Each slab is uploaded with a one-cell
//! halo (so the gradient stencil sees its neighbours), computed with the
//! *same* fused kernel the fusion strategy generates, and its interior is
//! downloaded — bounding device memory by the slab size instead of the grid
//! size. Results are bit-identical to single-pass fusion: interior cells
//! use the same central differences, and the global boundary slabs use the
//! same one-sided differences.

use dfg_dataflow::{NetworkSpec, Width};
use dfg_kernels::{fuse, Dims3, FusedKernel};
use dfg_ocl::{Context, ExecMode};

use crate::error::EngineError;
use crate::fields::{Field, FieldSet};
use crate::session::{program_key, CachedProgram, SessionState};
use crate::strategies::check_field;

/// Execute `spec` by streaming z-slabs through the fused kernel, keeping
/// peak device memory at or below `device_budget_bytes`.
///
/// The grid shape comes from the program's `dims` input when a gradient is
/// present; purely elementwise programs are streamed as flat chunks.
/// Returns the derived field (real mode), the generated kernel source, and
/// the number of slabs used.
pub fn run_streamed_fusion(
    spec: &NetworkSpec,
    fields: &FieldSet,
    ctx: &mut Context,
    label: &str,
    device_budget_bytes: u64,
) -> Result<(Option<Field>, String, usize), EngineError> {
    run_streamed_fusion_session(spec, fields, ctx, label, device_budget_bytes, None)
}

/// [`run_streamed_fusion`] with optional session state: codegen/compile is
/// served from the session's kernel cache (slab transfers themselves are
/// inherent to streaming, but pooling makes the per-slab buffers cheap).
/// With `session == None` the behavior is byte-identical.
pub(crate) fn run_streamed_fusion_session(
    spec: &NetworkSpec,
    fields: &FieldSet,
    ctx: &mut Context,
    label: &str,
    device_budget_bytes: u64,
    mut session: Option<&mut SessionState>,
) -> Result<(Option<Field>, String, usize), EngineError> {
    let real = ctx.mode() == ExecMode::Real;
    let n = fields.ncells();
    let tracer = ctx.tracer().cloned();
    let kernel_name = format!("fused_{label}_streamed");
    let cached = session.as_deref_mut().and_then(|state| {
        let key = program_key(spec, &[spec.result], true);
        let hit = state
            .programs
            .get(&key)
            .map(|c| (c.program.clone(), c.source.clone()));
        if hit.is_some() {
            state.stats.codegen_cached += 1;
        }
        hit
    });
    let (program, source) = match cached {
        Some((program, source)) => {
            drop(dfg_trace::span!(tracer, "codegen.cached", label = label));
            (program, source)
        }
        None => {
            let program = {
                let _codegen = dfg_trace::span!(tracer, "streamed.codegen", label = label);
                let program = fuse(spec)?;
                ctx.record_compile(&kernel_name)?;
                program
            };
            let source = program.generated_source(&kernel_name);
            if let Some(state) = session {
                state.stats.codegen_compiles += 1;
                state.programs.insert(
                    program_key(spec, &[spec.result], true),
                    CachedProgram {
                        program: program.clone(),
                        source: source.clone(),
                    },
                );
            }
            (program, source)
        }
    };

    // Bytes per mesh cell resident on the device: each input slot plus the
    // output, in f32 lanes.
    let mut lanes_per_cell: u64 = match program.output_width {
        Width::Vec4 => 4,
        _ => 1,
    };
    let mut needs_dims = false;
    for slot in &program.inputs {
        if slot.small {
            needs_dims = true;
        } else {
            lanes_per_cell += 1;
        }
    }
    let bytes_per_cell = 4 * lanes_per_cell;

    // Grid shape: [nx, ny, nz] from the dims field when the program uses a
    // gradient; otherwise stream the flat array as [n, 1, 1]-shaped rows.
    let (dims3, halo) = if needs_dims {
        let fv = check_field(fields, "dims", true, ctx.mode())?;
        let data = fv.data.as_ref().ok_or_else(|| EngineError::ModeMismatch {
            detail: "streaming a gradient program needs a concrete `dims` buffer \
                     even in model mode"
                .into(),
        })?;
        let d = Dims3::from_buffer(data);
        if d.ncells() != n {
            return Err(EngineError::FieldSize {
                name: "dims".into(),
                expected: n,
                found: d.ncells(),
            });
        }
        (d, 1usize)
    } else {
        // Elementwise programs have no stencil: stream flat chunks by
        // treating every cell as its own z-layer.
        (
            Dims3 {
                nx: 1,
                ny: 1,
                nz: n,
            },
            0usize,
        )
    };
    let plane = dims3.nx * dims3.ny; // cells per z-layer

    // Pick the largest slab depth whose ghosted extent fits the budget.
    let layer_bytes = plane as u64 * bytes_per_cell;
    let max_layers = (device_budget_bytes / layer_bytes.max(1)) as usize;
    let interior_layers = max_layers.saturating_sub(2 * halo);
    if interior_layers == 0 {
        return Err(EngineError::Ocl(dfg_ocl::OclError::OutOfMemory {
            requested: (1 + 2 * halo) as u64 * layer_bytes,
            in_use: 0,
            capacity: device_budget_bytes,
        }));
    }
    let nz = dims3.nz;
    let slabs = nz.div_ceil(interior_layers);

    let mut out_data = real.then(|| {
        vec![
            0.0f32;
            n * match program.output_width {
                Width::Vec4 => 4,
                _ => 1,
            }
        ]
    });
    let out_lanes_per_cell = match program.output_width {
        Width::Vec4 => 4usize,
        _ => 1,
    };

    let kernel = FusedKernel::new(program, &format!("{label}_streamed"));

    for slab in 0..slabs {
        let z0 = slab * interior_layers;
        let z1 = (z0 + interior_layers).min(nz);
        let gz0 = z0.saturating_sub(halo);
        let gz1 = (z1 + halo).min(nz);
        let slab_cells = plane * (gz1 - gz0);
        let _slab = dfg_trace::span!(
            tracer,
            "streamed.slab",
            slab = slab,
            z0 = z0,
            z1 = z1,
            cells = slab_cells,
        );

        // Upload each input's slab (ghosted along z).
        let mut bufs = Vec::with_capacity(kernel.program.inputs.len());
        for slot in &kernel.program.inputs {
            let fv = check_field(fields, &slot.name, slot.small, ctx.mode())?;
            if slot.small {
                // Per-slab dims buffer.
                let buf = ctx.create_buffer(3)?;
                if real {
                    ctx.enqueue_write(
                        buf,
                        &[dims3.nx as f32, dims3.ny as f32, (gz1 - gz0) as f32],
                    )?;
                } else {
                    ctx.enqueue_write_virtual(buf)?;
                }
                bufs.push(buf);
            } else {
                let buf = ctx.create_buffer(slab_cells)?;
                if real {
                    let data = fv.data.as_ref().expect("real mode");
                    ctx.enqueue_write(buf, &data[plane * gz0..plane * gz1])?;
                } else {
                    ctx.enqueue_write_virtual(buf)?;
                }
                bufs.push(buf);
            }
        }
        let out = ctx.create_buffer(slab_cells * out_lanes_per_cell)?;
        ctx.launch(&kernel, &bufs, out, slab_cells)?;
        if real {
            let slab_out = ctx.enqueue_read(out)?;
            let dst = out_data.as_mut().expect("real mode");
            // Copy the interior layers [z0, z1) out of the ghosted slab.
            let src_off = (z0 - gz0) * plane * out_lanes_per_cell;
            let len = (z1 - z0) * plane * out_lanes_per_cell;
            dst[z0 * plane * out_lanes_per_cell..][..len]
                .copy_from_slice(&slab_out[src_off..src_off + len]);
        } else {
            ctx.enqueue_read_virtual(out)?;
        }
        for buf in bufs {
            ctx.release(buf)?;
        }
        ctx.release(out)?;
    }

    let field = out_data.map(|data| Field {
        width: spec.width(spec.result),
        ncells: n,
        data,
    });
    Ok((field, source, slabs))
}
