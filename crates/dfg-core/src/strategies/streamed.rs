//! The *streamed fusion* execution strategy — the paper's §VI future work
//! ("we plan to investigate the runtime performance of our execution
//! strategies in a streaming context"), implemented as an **overlapped
//! slab pipeline**.
//!
//! The mesh is processed in z-slabs. Each slab is uploaded with a one-cell
//! halo (so the gradient stencil sees its neighbours), computed with the
//! *same* fused kernel the fusion strategy generates, and its interior is
//! downloaded — bounding device memory by the slab size instead of the grid
//! size. Results are bit-identical to single-pass fusion: interior cells
//! use the same central differences, and the global boundary slabs use the
//! same one-sided differences.
//!
//! Unlike a strictly serial upload→kernel→download loop, the pipeline keeps
//! an N-deep ring of device slab buffers (N = the configured overlap depth)
//! and drives three in-order command queues — one per stage — so the H2D
//! upload of slab *n+1* overlaps the kernel of slab *n*, which overlaps the
//! D2H download of slab *n−1*. Cross-queue [`EventToken`] dependencies
//! express exactly the hazards the ring has:
//!
//! * a slab's kernel waits for its uploads and for the previous download
//!   out of the same ring slot's output buffer (WAR on the output);
//! * a slab's uploads wait for the kernel that last read the same ring
//!   slot's input buffers (WAR on the inputs);
//! * a slab's download waits for its kernel (RAW).
//!
//! At depth 1 the download is additionally chained into the next upload, so
//! `overlap_depth = 1` is the strictly serial baseline for overlap
//! ablations. All virtual-clock arithmetic happens serially at enqueue
//! time, so Model and Real mode produce bit-identical clocks regardless of
//! `DFG_NUM_THREADS`.
//!
//! Host-side allocation discipline (the dgen-rs zero-copy rule: generate
//! into the destination, never into a temp `Vec`): big-field slabs upload
//! directly from windows of the caller's field storage, the per-slab dims
//! header is assembled in a pinned [`StagingRing`] slot reused round-robin,
//! and downloads land directly in the final output allocation via ranged
//! reads — the steady-state loop performs no per-slab heap allocation.

use dfg_dataflow::{NetworkSpec, Width};
use dfg_kernels::{fuse, Dims3, FusedKernel};
use dfg_ocl::{Context, EventToken, ExecMode, StagingRing};

use crate::engine::{SlabPolicy, StreamOptions};
use crate::error::EngineError;
use crate::fields::{Field, FieldSet};
use crate::session::{program_key, CachedProgram, SessionState};
use crate::strategies::check_field;

/// What one streamed run reports back to its driver.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StreamReport {
    /// Number of z-slabs the grid was split into.
    pub slabs: usize,
    /// Effective pipeline depth (ring slots actually used; never more than
    /// the slab count).
    pub depth: usize,
    /// Transient faults absorbed *inside* the pipeline — the faulted
    /// operation was re-issued on its queue after a backoff without
    /// draining the other queues.
    pub in_pipeline_retries: u32,
    /// Total virtual-clock backoff spent on in-pipeline retries, seconds.
    pub backoff_seconds: f64,
}

/// In-pipeline transient-retry budget, derived from the engine's
/// [`RecoveryPolicy`](crate::RecoveryPolicy) when recovery is enabled.
#[derive(Debug, Clone, Copy)]
pub(crate) struct StreamRetry {
    /// Transient faults absorbed before the error propagates to the
    /// recovery ladder.
    pub max_retries: u32,
    /// Initial per-retry virtual-clock backoff, seconds (doubles per
    /// retry, mirroring the ladder's whole-attempt backoff).
    pub backoff_seconds: f64,
}

/// Execute `spec` by streaming z-slabs through the fused kernel, keeping
/// peak device memory at or below `device_budget_bytes`.
///
/// The grid shape comes from the program's `dims` input when a gradient is
/// present; purely elementwise programs are streamed as flat chunks.
/// Returns the derived field (real mode), the generated kernel source, and
/// a [`StreamReport`] with the slab count and pipeline depth.
pub fn run_streamed_fusion(
    spec: &NetworkSpec,
    fields: &FieldSet,
    ctx: &mut Context,
    label: &str,
    device_budget_bytes: u64,
    stream: StreamOptions,
) -> Result<(Option<Field>, String, StreamReport), EngineError> {
    run_streamed_fusion_session(
        spec,
        fields,
        ctx,
        label,
        device_budget_bytes,
        stream,
        None,
        None,
    )
}

/// [`run_streamed_fusion`] with optional session state and an in-pipeline
/// retry budget: codegen/compile is served from the session's kernel cache,
/// and the ring's device buffers come from (and return to) the context's
/// pool, so successive session cycles reuse the same slab storage. With
/// `session == None` the behavior is byte-identical.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_streamed_fusion_session(
    spec: &NetworkSpec,
    fields: &FieldSet,
    ctx: &mut Context,
    label: &str,
    device_budget_bytes: u64,
    stream: StreamOptions,
    retry: Option<StreamRetry>,
    mut session: Option<&mut SessionState>,
) -> Result<(Option<Field>, String, StreamReport), EngineError> {
    let real = ctx.mode() == ExecMode::Real;
    let n = fields.ncells();
    let tracer = ctx.tracer().cloned();
    let kernel_name = format!("fused_{label}_streamed");
    let cached = session.as_deref_mut().and_then(|state| {
        let key = program_key(spec, &[spec.result], true);
        let hit = state
            .programs
            .get(&key)
            .map(|c| (c.program.clone(), c.source.clone()));
        if hit.is_some() {
            state.stats.codegen_cached += 1;
        }
        hit
    });
    let (program, source) = match cached {
        Some((program, source)) => {
            drop(dfg_trace::span!(tracer, "codegen.cached", label = label));
            (program, source)
        }
        None => {
            let program = {
                let _codegen = dfg_trace::span!(tracer, "streamed.codegen", label = label);
                let program = fuse(spec)?;
                ctx.record_compile(&kernel_name)?;
                program
            };
            let source = program.generated_source(&kernel_name);
            if let Some(state) = session {
                state.stats.codegen_compiles += 1;
                state.programs.insert(
                    program_key(spec, &[spec.result], true),
                    CachedProgram {
                        program: program.clone(),
                        source: source.clone(),
                    },
                );
            }
            (program, source)
        }
    };

    // Bytes per mesh cell resident on the device: each input slot plus the
    // output, in f32 lanes.
    let mut lanes_per_cell: u64 = match program.output_width {
        Width::Vec4 => 4,
        _ => 1,
    };
    let mut needs_dims = false;
    let mut small_inputs: u64 = 0;
    for slot in &program.inputs {
        if slot.small {
            needs_dims = true;
            small_inputs += 1;
        } else {
            lanes_per_cell += 1;
        }
    }
    let bytes_per_cell = 4 * lanes_per_cell;
    // Fixed per-ring-slot overhead: each small input holds a 3-lane header.
    let small_bytes_per_slot = 4 * 3 * small_inputs;

    // Grid shape: [nx, ny, nz] from the dims field when the program uses a
    // gradient; otherwise stream the flat array as [n, 1, 1]-shaped rows.
    let (dims3, halo) = if needs_dims {
        let fv = check_field(fields, "dims", true, ctx.mode())?;
        let data = fv.data.as_ref().ok_or_else(|| EngineError::ModeMismatch {
            detail: "streaming a gradient program needs a concrete `dims` buffer \
                     even in model mode"
                .into(),
        })?;
        let d = Dims3::from_buffer(data);
        if d.ncells() != n {
            return Err(EngineError::FieldSize {
                name: "dims".into(),
                expected: n,
                found: d.ncells(),
            });
        }
        (d, 1usize)
    } else {
        // Elementwise programs have no stencil: stream flat chunks by
        // treating every cell as its own z-layer.
        (
            Dims3 {
                nx: 1,
                ny: 1,
                nz: n,
            },
            0usize,
        )
    };
    let plane = dims3.nx * dims3.ny; // cells per z-layer
    let nz = dims3.nz;
    let layer_bytes = plane as u64 * bytes_per_cell;

    // Slab sizing: `depth` ring slots must fit the budget simultaneously,
    // so each slab's ghosted extent gets budget/depth bytes. If the grid
    // needs fewer slabs than the requested depth, shrink the depth (and
    // re-size) — a grid that fits in one slab degenerates to the serial
    // single-slab case regardless of the requested overlap.
    let requested_depth = stream.overlap_depth.max(1);
    let mut depth = requested_depth;
    let (interior_layers, slabs) = loop {
        let slot_budget = (device_budget_bytes / depth as u64).saturating_sub(small_bytes_per_slot);
        let max_layers = (slot_budget / layer_bytes.max(1)) as usize;
        let fit = max_layers.saturating_sub(2 * halo);
        let interior = match stream.slab_policy {
            SlabPolicy::MaxFit => fit,
            SlabPolicy::FixedLayers(k) => fit.min(k.max(1)),
        };
        if interior == 0 {
            // A tight budget may not hold `depth` ghosted slabs at once;
            // trade pipeline depth for slab size before giving up. Only a
            // budget too small for a single minimal slab is a real OOM.
            if depth > 1 {
                depth -= 1;
                continue;
            }
            return Err(EngineError::Ocl(dfg_ocl::OclError::OutOfMemory {
                requested: (1 + 2 * halo) as u64 * layer_bytes,
                in_use: 0,
                capacity: device_budget_bytes,
            }));
        }
        let slabs = nz.div_ceil(interior);
        if slabs >= depth || depth == 1 {
            break (interior, slabs);
        }
        depth = slabs.max(1);
    };
    let max_ghosted_layers = (interior_layers + 2 * halo).min(nz);
    let max_slab_cells = plane * max_ghosted_layers;

    let out_lanes_per_cell = match program.output_width {
        Width::Vec4 => 4usize,
        _ => 1,
    };
    let mut out_data = real.then(|| vec![0.0f32; n * out_lanes_per_cell]);

    let kernel = FusedKernel::new(program, &format!("{label}_streamed"));

    // Hoist per-input validation and host views out of the slab loop.
    struct InputPlan<'a> {
        small: bool,
        data: Option<&'a [f32]>,
    }
    let mut inputs: Vec<InputPlan<'_>> = Vec::with_capacity(kernel.program.inputs.len());
    for slot in &kernel.program.inputs {
        let fv = check_field(fields, &slot.name, slot.small, ctx.mode())?;
        inputs.push(InputPlan {
            small: slot.small,
            data: fv.data.as_deref(),
        });
    }

    let pipeline_span = dfg_trace::span!(
        tracer,
        "stream.pipeline",
        depth = depth,
        slabs = slabs,
        interior_layers = interior_layers,
        budget_bytes = device_budget_bytes,
    );
    pipeline_span.virt_start(ctx.clock_seconds());

    // Three in-order queues, one per pipeline stage.
    let queues = ctx.acquire_queues(3);
    let (q_h2d, q_kexe, q_d2h) = (queues[0], queues[1], queues[2]);

    // The device slab ring: `depth` slot-sets of (input buffers + output
    // buffer), each sized for the largest ghosted slab, allocated once and
    // reused for every slab (with pooling on, across session cycles too).
    let mut ring_inputs: Vec<Vec<dfg_ocl::BufferId>> = Vec::with_capacity(depth);
    let mut ring_out: Vec<dfg_ocl::BufferId> = Vec::with_capacity(depth);
    let mut created: Vec<dfg_ocl::BufferId> = Vec::new();
    let mut alloc_err: Option<EngineError> = None;
    'alloc: for _ in 0..depth {
        let mut bufs = Vec::with_capacity(inputs.len());
        for input in &inputs {
            let lanes = if input.small { 3 } else { max_slab_cells };
            match ctx.create_buffer(lanes) {
                Ok(id) => {
                    created.push(id);
                    bufs.push(id);
                }
                Err(e) => {
                    alloc_err = Some(e.into());
                    break 'alloc;
                }
            }
        }
        match ctx.create_buffer(max_slab_cells * out_lanes_per_cell) {
            Ok(id) => {
                created.push(id);
                ring_out.push(id);
            }
            Err(e) => {
                alloc_err = Some(e.into());
                break 'alloc;
            }
        }
        ring_inputs.push(bufs);
    }
    if let Some(e) = alloc_err {
        // Park what was created so a retried/fallback attempt can reuse it;
        // the context is left exactly as the caller handed it over.
        for id in created {
            let _ = ctx.release(id);
        }
        return Err(e);
    }

    // Pinned host staging ring for the per-slab dims header: assembled
    // directly into the reused slot, never into a fresh Vec.
    let mut staging = real.then(|| StagingRing::new(depth, 3));

    // In-pipeline transient retry state.
    let mut retries_left = retry.as_ref().map_or(0, |r| r.max_retries);
    let mut backoff = retry.as_ref().map_or(0.0, |r| r.backoff_seconds);
    let mut report = StreamReport {
        slabs,
        depth,
        in_pipeline_retries: 0,
        backoff_seconds: 0.0,
    };

    // Issue one queued operation with in-pipeline retry: a transient fault
    // backs off on the *faulted queue only* (the other stages keep their
    // schedules) and re-issues; persistent faults or an exhausted budget
    // propagate to the caller (the recovery ladder). Integrity violations
    // are transient but NOT retryable in-pipeline: re-issuing the same
    // operation re-reads the same corrupt bits, so they propagate to the
    // ladder, which invalidates the tainted buffer before its retry.
    macro_rules! issue {
        ($queue:expr, $op:expr) => {
            loop {
                match $op {
                    Ok(tok) => break Ok(tok),
                    Err(e) if e.is_transient() && !e.is_integrity() && retries_left > 0 => {
                        retries_left -= 1;
                        report.in_pipeline_retries += 1;
                        report.backoff_seconds += backoff;
                        let rs = dfg_trace::span!(
                            tracer,
                            "stream.retry",
                            queue = $queue.index(),
                            remaining = retries_left,
                        );
                        rs.virt_start(ctx.queue_clock_seconds($queue));
                        ctx.advance_queue($queue, backoff);
                        rs.virt_end(ctx.queue_clock_seconds($queue));
                        drop(rs.meta("error", e.to_string()));
                        backoff *= 2.0;
                    }
                    Err(e) => break Err(EngineError::from(e)),
                }
            }
        };
    }

    // Per-ring-slot hazard tokens.
    let mut last_kernel: Vec<Option<EventToken>> = vec![None; depth];
    let mut last_download: Vec<Option<EventToken>> = vec![None; depth];
    let mut prev_download: Option<EventToken> = None;

    let run = (|| -> Result<(), EngineError> {
        for slab in 0..slabs {
            let z0 = slab * interior_layers;
            let z1 = (z0 + interior_layers).min(nz);
            let gz0 = z0.saturating_sub(halo);
            let gz1 = (z1 + halo).min(nz);
            let slab_cells = plane * (gz1 - gz0);
            let slot = slab % depth;
            let slab_span = dfg_trace::span!(
                tracer,
                "stream.slab",
                slab = slab,
                slot = slot,
                z0 = z0,
                z1 = z1,
                cells = slab_cells,
                bytes = slab_cells as u64 * bytes_per_cell,
            );

            // WAR: this slot's input buffers are still being read by the
            // kernel issued `depth` slabs ago. At depth 1 the previous
            // download is chained in too, making the pipeline strictly
            // serial — the overlap-off ablation baseline.
            let mut upload_deps: Vec<EventToken> = Vec::with_capacity(2);
            if let Some(t) = last_kernel[slot] {
                upload_deps.push(t);
            }
            if depth == 1 {
                if let Some(t) = prev_download {
                    upload_deps.push(t);
                }
            }

            let mut first_start: Option<f64> = None;
            let mut kernel_deps: Vec<EventToken> = Vec::with_capacity(inputs.len() + 1);
            for (input, &buf) in inputs.iter().zip(&ring_inputs[slot]) {
                let tok = if input.small {
                    if let Some(stg) = staging.as_mut() {
                        // Assemble the header in its pinned staging slot and
                        // upload straight from it — no per-slab Vec.
                        let header = stg.slot_mut(slab);
                        header[0] = dims3.nx as f32;
                        header[1] = dims3.ny as f32;
                        header[2] = (gz1 - gz0) as f32;
                        let stg = &*stg;
                        issue!(
                            q_h2d,
                            ctx.enqueue_write_q(q_h2d, buf, stg.slot(slab), &upload_deps)
                        )?
                    } else {
                        issue!(
                            q_h2d,
                            ctx.enqueue_write_virtual_q(q_h2d, buf, 3, &upload_deps)
                        )?
                    }
                } else if let Some(data) = input.data {
                    issue!(
                        q_h2d,
                        ctx.enqueue_write_q(
                            q_h2d,
                            buf,
                            &data[plane * gz0..plane * gz1],
                            &upload_deps,
                        )
                    )?
                } else {
                    issue!(
                        q_h2d,
                        ctx.enqueue_write_virtual_q(q_h2d, buf, slab_cells, &upload_deps)
                    )?
                };
                first_start.get_or_insert(tok.virt_start());
                kernel_deps.push(tok);
            }

            // WAR: this slot's output buffer is still draining to the host
            // from `depth` slabs ago.
            if let Some(t) = last_download[slot] {
                kernel_deps.push(t);
            }
            let k_tok = issue!(
                q_kexe,
                ctx.launch_q(
                    q_kexe,
                    &kernel,
                    &ring_inputs[slot],
                    ring_out[slot],
                    slab_cells,
                    &kernel_deps,
                )
            )?;
            last_kernel[slot] = Some(k_tok);

            // RAW: download the interior layers [z0, z1) straight into the
            // output field's final storage — a ranged read, no temp Vec.
            let src_off = (z0 - gz0) * plane * out_lanes_per_cell;
            let len = (z1 - z0) * plane * out_lanes_per_cell;
            let d_tok = if let Some(dst) = out_data.as_mut() {
                let window = &mut dst[z0 * plane * out_lanes_per_cell..][..len];
                issue!(
                    q_d2h,
                    ctx.enqueue_read_range_q(q_d2h, ring_out[slot], src_off, window, &[k_tok])
                )?
            } else {
                issue!(
                    q_d2h,
                    ctx.enqueue_read_range_virtual_q(q_d2h, ring_out[slot], src_off, len, &[k_tok])
                )?
            };
            last_download[slot] = Some(d_tok);
            prev_download = Some(d_tok);

            slab_span.virt_start(first_start.unwrap_or(k_tok.virt_start()));
            slab_span.virt_end(d_tok.virt_end());
        }
        Ok(())
    })();

    // Release the ring whether the pipeline completed or not: on success
    // the buffers park in the pool for the next cycle; on failure the
    // recovery driver's rollback sees a clean context either way.
    for bufs in &ring_inputs {
        for &buf in bufs {
            ctx.release(buf)?;
        }
    }
    for &buf in &ring_out {
        ctx.release(buf)?;
    }
    pipeline_span.virt_end(ctx.clock_seconds());
    drop(pipeline_span.meta("queues", 3usize));
    run?;

    let field = out_data.map(|data| Field {
        width: spec.width(spec.result),
        ncells: n,
        data,
    });
    Ok((field, source, report))
}
