//! The *roundtrip* execution strategy (§III-C.1).
//!
//! One kernel per filter; **every kernel input port** is uploaded from host
//! memory and every kernel output is downloaded back, so the device never
//! holds more than one kernel's working set. Decompose runs on the host
//! (array slicing), and constants are materialized as problem-sized host
//! arrays uploaded per consuming port — both behaviours are required to
//! reproduce the paper's Table II transfer counts and Figure 6 memory
//! curves.

use std::collections::HashMap;

use dfg_dataflow::{FilterOp, NetworkSpec, NodeId, Schedule, Width};
use dfg_kernels::Primitive;
use dfg_ocl::{Context, DeviceKernel, ExecMode};

use crate::error::EngineError;
use crate::fields::{Field, FieldSet};
use crate::session::SessionState;
use crate::strategies::{check_field, lanes_for};

/// A host-resident intermediate value.
enum HostVal<'a> {
    /// Borrowed directly from the host's field set.
    Slice(&'a [f32]),
    /// Computed (kernel download, host decompose, or constant fill).
    Owned(Vec<f32>),
    /// Model mode: shape tracked, no data.
    Virtual,
}

impl HostVal<'_> {
    fn as_slice(&self) -> Option<&[f32]> {
        match self {
            HostVal::Slice(s) => Some(s),
            HostVal::Owned(v) => Some(v),
            HostVal::Virtual => None,
        }
    }
}

/// Execute `spec` with the roundtrip strategy. Returns the derived field in
/// real mode, `None` in model mode.
///
/// `dedup_uploads` enables the D1 ablation: upload each distinct kernel
/// input once rather than once per port (the paper transfers per port).
pub fn run_roundtrip(
    spec: &NetworkSpec,
    sched: &Schedule,
    fields: &FieldSet,
    ctx: &mut Context,
    dedup_uploads: bool,
) -> Result<Option<Field>, EngineError> {
    let out = run_roundtrip_multi(spec, sched, fields, ctx, dedup_uploads, &[spec.result])?;
    Ok(out.map(|mut v| v.pop().expect("one root, one field")))
}

/// Multi-output roundtrip: same protocol, several result fields extracted
/// from the host-value map (the schedule must pin `roots` live).
pub fn run_roundtrip_multi(
    spec: &NetworkSpec,
    sched: &Schedule,
    fields: &FieldSet,
    ctx: &mut Context,
    dedup_uploads: bool,
    roots: &[dfg_dataflow::NodeId],
) -> Result<Option<Vec<Field>>, EngineError> {
    run_roundtrip_multi_session(spec, sched, fields, ctx, dedup_uploads, roots, None)
}

/// [`run_roundtrip_multi`] with optional session state. Under a session,
/// ports fed by source `Input` nodes use the session's generation-checked
/// resident buffers instead of the paper's upload-per-port protocol (the
/// whole point of a persistent session is to not re-transfer unchanged
/// inputs); intermediates, constants, and decompose results still roundtrip
/// through the host. With `session == None` the behavior is byte-identical
/// to the one-shot path.
pub(crate) fn run_roundtrip_multi_session(
    spec: &NetworkSpec,
    sched: &Schedule,
    fields: &FieldSet,
    ctx: &mut Context,
    dedup_uploads: bool,
    roots: &[dfg_dataflow::NodeId],
    mut session: Option<&mut SessionState>,
) -> Result<Option<Vec<Field>>, EngineError> {
    let real = ctx.mode() == ExecMode::Real;
    let n = fields.ncells();
    let tracer = ctx.tracer().cloned();
    let mut host: HashMap<NodeId, HostVal> = HashMap::new();

    for (step, &id) in sched.order.iter().enumerate() {
        let node = spec.node(id);
        match &node.op {
            FilterOp::Input { name, small } => {
                let fv = check_field(fields, name, *small, ctx.mode())?;
                let val = match &fv.data {
                    Some(d) => HostVal::Slice(d),
                    None => HostVal::Virtual,
                };
                host.insert(id, val);
            }
            FilterOp::Const(v) => {
                // Materialized as a problem-sized host array; uploaded once
                // per consuming port below.
                let val = if real {
                    HostVal::Owned(vec![*v; n])
                } else {
                    HostVal::Virtual
                };
                host.insert(id, val);
            }
            FilterOp::Decompose(comp) => {
                // Host-side slicing: no device kernel under roundtrip.
                let val = if real {
                    let src = host
                        .get(&node.inputs[0])
                        .and_then(HostVal::as_slice)
                        .expect("scheduled operand present in real mode");
                    let comp = *comp as usize;
                    HostVal::Owned((0..n).map(|i| src[4 * i + comp]).collect())
                } else {
                    HostVal::Virtual
                };
                host.insert(id, val);
            }
            op => {
                let prim = Primitive::from_filter_op(op).expect("compute op");
                let _step = dfg_trace::span!(tracer, "roundtrip.filter", kernel = prim.name(),);
                // Upload one device buffer per input port (duplicate ports
                // transfer twice — Table II's Dev-W counts). Under the D1
                // ablation, ports sharing a source share one upload.
                let mut port_bufs = Vec::with_capacity(node.inputs.len());
                let mut created: Vec<dfg_ocl::BufferId> = Vec::new();
                let mut uploaded: HashMap<NodeId, dfg_ocl::BufferId> = HashMap::new();
                {
                    let _upload =
                        dfg_trace::span!(tracer, "roundtrip.upload", ports = node.inputs.len(),);
                    for &input in &node.inputs {
                        // Session: source fields live on the device across
                        // cycles; no per-port upload for them.
                        if session.is_some() {
                            if let FilterOp::Input { name, small } = &spec.node(input).op {
                                let state = session.as_deref_mut().expect("checked");
                                let buf = state.bind_input(ctx, fields, name, *small)?;
                                port_bufs.push(buf);
                                continue;
                            }
                        }
                        if dedup_uploads {
                            if let Some(&buf) = uploaded.get(&input) {
                                port_bufs.push(buf);
                                continue;
                            }
                        }
                        let w = host_width(spec, input);
                        let buf = ctx.create_buffer(lanes_for(w, n))?;
                        if real {
                            let data = host
                                .get(&input)
                                .and_then(HostVal::as_slice)
                                .expect("scheduled operand present in real mode");
                            ctx.enqueue_write(buf, data)?;
                        } else {
                            ctx.enqueue_write_virtual(buf)?;
                        }
                        uploaded.insert(input, buf);
                        created.push(buf);
                        port_bufs.push(buf);
                    }
                }
                let out = ctx.create_buffer(lanes_for(op.width(), n))?;
                {
                    let _kernel = dfg_trace::span!(tracer, "roundtrip.kernel");
                    ctx.launch(&prim, &port_bufs, out, n)?;
                }
                let val = {
                    let _download = dfg_trace::span!(tracer, "roundtrip.download");
                    if real {
                        HostVal::Owned(ctx.enqueue_read(out)?)
                    } else {
                        ctx.enqueue_read_virtual(out)?;
                        HostVal::Virtual
                    }
                };
                host.insert(id, val);
                // The device is drained after every filter (each created
                // buffer released exactly once).
                for buf in created {
                    ctx.release(buf)?;
                }
                ctx.release(out)?;
            }
        }
        // Reference-counted host reuse: drop dead intermediates.
        for dead in &sched.free_after[step] {
            host.remove(dead);
        }
    }

    if !real {
        return Ok(None);
    }
    let mut out = Vec::with_capacity(roots.len());
    for &root in roots {
        let data = match host.get(&root).expect("root pinned by schedule") {
            HostVal::Owned(v) => v.clone(),
            HostVal::Slice(s) => s.to_vec(),
            HostVal::Virtual => unreachable!("real mode"),
        };
        out.push(Field {
            width: spec.width(root),
            ncells: n,
            data,
        });
    }
    Ok(Some(out))
}

/// Width of the host value a node holds (what a roundtrip upload of that
/// node's value transfers).
fn host_width(spec: &NetworkSpec, id: NodeId) -> Width {
    match &spec.node(id).op {
        FilterOp::Decompose(_) | FilterOp::Const(_) => Width::Scalar,
        op => op.width(),
    }
}
