//! The *fusion* execution strategy (§III-C.3).
//!
//! The dynamic kernel generator (`dfg_kernels::fuse`) compiles the whole
//! network into one kernel; each distinct input field is uploaded once, a
//! single kernel launch computes the derived field with intermediates in
//! registers, and one download returns the result.

use dfg_dataflow::{NetworkSpec, NodeId, Width};
use dfg_kernels::{fuse_roots, FusedKernel};
use dfg_ocl::{Context, ExecMode};

use crate::error::EngineError;
use crate::fields::{Field, FieldSet};
use crate::session::{program_key, CachedProgram, SessionState};
use crate::strategies::{check_field, lanes_for};

/// Execute `spec` with the fusion strategy. Returns the derived field in
/// real mode, `None` in model mode, plus the generated kernel source.
pub fn run_fusion(
    spec: &NetworkSpec,
    fields: &FieldSet,
    ctx: &mut Context,
    label: &str,
) -> Result<(Option<Field>, String), EngineError> {
    let (fields_out, source) = run_fusion_multi(spec, &[spec.result], fields, ctx, label)?;
    Ok((
        fields_out.map(|mut v| v.pop().expect("one root, one field")),
        source,
    ))
}

/// Multi-output fusion: one generated kernel computes every root, writing
/// an interleaved output buffer that is de-interleaved host-side after the
/// single download.
pub fn run_fusion_multi(
    spec: &NetworkSpec,
    roots: &[NodeId],
    fields: &FieldSet,
    ctx: &mut Context,
    label: &str,
) -> Result<(Option<Vec<Field>>, String), EngineError> {
    run_fusion_multi_session(spec, roots, fields, ctx, label, None)
}

/// [`run_fusion_multi`] with optional session state: codegen is served
/// from the session's kernel cache, input uploads go through its
/// generation-checked resident buffers (which are *not* released here),
/// and only session-owned transients are drained. With `session == None`
/// the behavior is byte-identical to the one-shot path.
pub(crate) fn run_fusion_multi_session(
    spec: &NetworkSpec,
    roots: &[NodeId],
    fields: &FieldSet,
    ctx: &mut Context,
    label: &str,
    mut session: Option<&mut SessionState>,
) -> Result<(Option<Vec<Field>>, String), EngineError> {
    let real = ctx.mode() == ExecMode::Real;
    let n = fields.ncells();
    let tracer = ctx.tracer().cloned();
    let kernel_name = format!("fused_{label}");
    let cached = session.as_deref_mut().and_then(|state| {
        let key = program_key(spec, roots, false);
        let hit = state
            .programs
            .get(&key)
            .map(|c| (c.program.clone(), c.source.clone()));
        if hit.is_some() {
            state.stats.codegen_cached += 1;
        }
        hit
    });
    let (program, source) = match cached {
        Some((program, source)) => {
            drop(dfg_trace::span!(tracer, "codegen.cached", label = label));
            (program, source)
        }
        None => {
            let program = {
                let _codegen = dfg_trace::span!(tracer, "fusion.codegen", label = label);
                let program = fuse_roots(spec, roots)?;
                ctx.record_compile(&kernel_name)?;
                program
            };
            let source = program.generated_source(&kernel_name);
            if let Some(state) = session.as_deref_mut() {
                state.stats.codegen_compiles += 1;
                state.programs.insert(
                    program_key(spec, roots, false),
                    CachedProgram {
                        program: program.clone(),
                        source: source.clone(),
                    },
                );
            }
            (program, source)
        }
    };

    let mut bufs = Vec::with_capacity(program.inputs.len());
    // Buffers this call created and must release (with a session, resident
    // inputs are owned by the session and stay on the device).
    let mut owned = Vec::new();
    {
        let _upload = dfg_trace::span!(tracer, "fusion.upload", inputs = program.inputs.len());
        for slot in &program.inputs {
            let buf = match session.as_deref_mut() {
                Some(state) => state.bind_input(ctx, fields, &slot.name, slot.small)?,
                None => {
                    let fv = check_field(fields, &slot.name, slot.small, ctx.mode())?;
                    let buf = ctx.create_buffer(lanes_for(fv.width, n))?;
                    if real {
                        ctx.enqueue_write(buf, fv.data.as_ref().expect("real mode"))?;
                    } else {
                        ctx.enqueue_write_virtual(buf)?;
                    }
                    owned.push(buf);
                    buf
                }
            };
            bufs.push(buf);
        }
    }
    let lanes_per_elem = program.lanes_per_elem;
    let out = ctx.create_buffer(lanes_per_elem * n)?;
    let outputs_meta: Vec<(Width, usize)> = program
        .outputs
        .iter()
        .map(|o| (o.width, o.lane_offset))
        .collect();
    let kernel = FusedKernel::new(program, label);
    {
        let _kernel = dfg_trace::span!(tracer, "fusion.kernel", label = label);
        ctx.launch(&kernel, &bufs, out, n)?;
    }

    let _download = dfg_trace::span!(tracer, "fusion.download");
    let fields_out = if real {
        let interleaved = ctx.enqueue_read(out)?;
        let mut result = Vec::with_capacity(outputs_meta.len());
        for &(width, lane_offset) in &outputs_meta {
            let w = match width {
                Width::Vec4 => 4,
                _ => 1,
            };
            let mut data = Vec::with_capacity(w * n);
            for i in 0..n {
                let base = i * lanes_per_elem + lane_offset;
                data.extend_from_slice(&interleaved[base..base + w]);
            }
            result.push(Field {
                width,
                ncells: n,
                data,
            });
        }
        Some(result)
    } else {
        ctx.enqueue_read_virtual(out)?;
        None
    };
    for buf in owned {
        ctx.release(buf)?;
    }
    ctx.release(out)?;
    Ok((fields_out, source))
}
