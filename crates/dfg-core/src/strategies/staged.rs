//! The *staged* execution strategy (§III-C.2).
//!
//! One kernel per filter, with intermediate results staged in device global
//! memory between kernel invocations: inputs are uploaded lazily (just
//! before their first consuming kernel), `decompose` is a device kernel
//! (*"it implements the decomposition primitive using a kernel to move
//! intermediate results on the OpenCL target device"*), constants are
//! materialized by a device fill kernel, and buffers are released the moment
//! their reference count drops to zero.

use std::collections::HashMap;

use dfg_dataflow::{FilterOp, NetworkSpec, NodeId, Schedule};
use dfg_kernels::Primitive;
use dfg_ocl::{BufferId, Context, DeviceKernel, ExecMode};

use crate::error::EngineError;
use crate::fields::{Field, FieldSet};
use crate::session::SessionState;
use crate::strategies::{check_field, lanes_for};

/// Execute `spec` with the staged strategy. Returns the derived field in
/// real mode, `None` in model mode.
pub fn run_staged(
    spec: &NetworkSpec,
    sched: &Schedule,
    fields: &FieldSet,
    ctx: &mut Context,
) -> Result<Option<Field>, EngineError> {
    let out = run_staged_multi(spec, sched, fields, ctx, &[spec.result])?;
    Ok(out.map(|mut v| v.pop().expect("one root, one field")))
}

/// Multi-output staged execution: one device-to-host read per root.
pub fn run_staged_multi(
    spec: &NetworkSpec,
    sched: &Schedule,
    fields: &FieldSet,
    ctx: &mut Context,
    roots: &[NodeId],
) -> Result<Option<Vec<Field>>, EngineError> {
    run_staged_multi_session(spec, sched, fields, ctx, roots, None)
}

/// [`run_staged_multi`] with optional session state: input uploads go
/// through the session's generation-checked resident buffers, which the
/// drain passes leave on the device. With `session == None` the behavior
/// is byte-identical to the one-shot path.
pub(crate) fn run_staged_multi_session(
    spec: &NetworkSpec,
    sched: &Schedule,
    fields: &FieldSet,
    ctx: &mut Context,
    roots: &[NodeId],
    mut session: Option<&mut SessionState>,
) -> Result<Option<Vec<Field>>, EngineError> {
    let real = ctx.mode() == ExecMode::Real;
    let n = fields.ncells();
    let tracer = ctx.tracer().cloned();
    let mut dev: HashMap<NodeId, BufferId> = HashMap::new();

    for (step, &id) in sched.order.iter().enumerate() {
        let node = spec.node(id);
        match &node.op {
            // Uploaded lazily at first consumer.
            FilterOp::Input { .. } => {}
            op => {
                // Make every operand resident (this is where lazy input
                // uploads happen, in port order — matching memreq's staged
                // simulation exactly).
                for &input in &node.inputs {
                    if dev.contains_key(&input) {
                        continue;
                    }
                    let FilterOp::Input { name, small } = &spec.node(input).op else {
                        unreachable!("non-input operand {input} not yet resident");
                    };
                    let _upload = dfg_trace::span!(tracer, "staged.upload", port = name.as_str());
                    let buf = match session.as_deref_mut() {
                        Some(state) => state.bind_input(ctx, fields, name, *small)?,
                        None => {
                            let fv = check_field(fields, name, *small, ctx.mode())?;
                            let buf = ctx.create_buffer(lanes_for(fv.width, n))?;
                            if real {
                                ctx.enqueue_write(buf, fv.data.as_ref().expect("real mode"))?;
                            } else {
                                ctx.enqueue_write_virtual(buf)?;
                            }
                            buf
                        }
                    };
                    dev.insert(input, buf);
                }
                let prim = Primitive::from_filter_op(op).expect("compute op or const");
                let out = ctx.create_buffer(lanes_for(op.width(), n))?;
                let inputs: Vec<BufferId> = node.inputs.iter().map(|i| dev[i]).collect();
                {
                    let _kernel = dfg_trace::span!(tracer, "staged.kernel", kernel = prim.name());
                    ctx.launch(&prim, &inputs, out, n)?;
                }
                dev.insert(id, out);
            }
        }
        // Reference counting: release buffers whose last consumer ran
        // (session-resident inputs stay on the device).
        for dead in &sched.free_after[step] {
            if let Some(buf) = dev.remove(dead) {
                if !session.as_deref().is_some_and(|s| s.is_resident(buf)) {
                    ctx.release(buf)?;
                }
            }
        }
    }

    let mut out = real.then(Vec::new);
    let _download = dfg_trace::span!(tracer, "staged.download", roots = roots.len());
    for &root in roots {
        let result_buf = match dev.get(&root) {
            Some(&buf) => buf,
            None => {
                // Degenerate network: the root is a bare input never
                // consumed by a kernel. Upload it so the device-to-host
                // protocol holds.
                let FilterOp::Input { name, small } = &spec.node(root).op else {
                    unreachable!("non-input root must have been computed")
                };
                let buf = match session.as_deref_mut() {
                    Some(state) => state.bind_input(ctx, fields, name, *small)?,
                    None => {
                        let fv = check_field(fields, name, *small, ctx.mode())?;
                        let buf = ctx.create_buffer(lanes_for(fv.width, n))?;
                        if real {
                            ctx.enqueue_write(buf, fv.data.as_ref().expect("real mode"))?;
                        } else {
                            ctx.enqueue_write_virtual(buf)?;
                        }
                        buf
                    }
                };
                dev.insert(root, buf);
                buf
            }
        };
        if let Some(fields_out) = out.as_mut() {
            let data = ctx.enqueue_read(result_buf)?;
            fields_out.push(Field {
                width: spec.width(root),
                ncells: n,
                data,
            });
        } else {
            ctx.enqueue_read_virtual(result_buf)?;
        }
    }
    // Drain the device (session-resident inputs stay for the next cycle).
    for (_, buf) in dev {
        if !session.as_deref().is_some_and(|s| s.is_resident(buf)) {
            ctx.release(buf)?;
        }
    }
    Ok(out)
}
