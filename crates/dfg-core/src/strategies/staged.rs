//! The *staged* execution strategy (§III-C.2).
//!
//! One kernel per filter, with intermediate results staged in device global
//! memory between kernel invocations: inputs are uploaded lazily (just
//! before their first consuming kernel), `decompose` is a device kernel
//! (*"it implements the decomposition primitive using a kernel to move
//! intermediate results on the OpenCL target device"*), constants are
//! materialized by a device fill kernel, and buffers are released the moment
//! their reference count drops to zero.
//!
//! Two executors share this module:
//!
//! * [`run_staged_multi`] — the paper's serial walk over
//!   [`Schedule::order`], one launch (and one event) at a time.
//! * [`run_staged_levels_multi`] — *branch-parallel*: walks
//!   [`Schedule::levels`] and dispatches each level's mutually independent
//!   kernels as one [`Context::launch_batch`], so sibling branches (the
//!   three `grad`s of a vorticity network) execute concurrently on the
//!   `dfg-exec` pool. Events stay in deterministic level/id order and
//!   outputs are bit-identical to the serial walk; free points move from
//!   per-step to per-level, so the allocation high-water mark may differ —
//!   which is why branch parallelism is opt-in
//!   ([`EngineOptions::branch_parallel`](crate::EngineOptions)).

use std::collections::HashMap;

use dfg_dataflow::{FilterOp, NetworkSpec, NodeId, Schedule};
use dfg_kernels::Primitive;
use dfg_ocl::{BatchLaunch, BufferId, Context, DeviceKernel, ExecMode};
use dfg_trace::Tracer;

use crate::error::EngineError;
use crate::fields::{Field, FieldSet};
use crate::session::SessionState;
use crate::strategies::{check_field, lanes_for};

/// Execute `spec` with the staged strategy. Returns the derived field in
/// real mode, `None` in model mode.
pub fn run_staged(
    spec: &NetworkSpec,
    sched: &Schedule,
    fields: &FieldSet,
    ctx: &mut Context,
) -> Result<Option<Field>, EngineError> {
    let out = run_staged_multi(spec, sched, fields, ctx, &[spec.result])?;
    Ok(out.map(|mut v| v.pop().expect("one root, one field")))
}

/// Multi-output staged execution: one device-to-host read per root.
pub fn run_staged_multi(
    spec: &NetworkSpec,
    sched: &Schedule,
    fields: &FieldSet,
    ctx: &mut Context,
    roots: &[NodeId],
) -> Result<Option<Vec<Field>>, EngineError> {
    run_staged_multi_session(spec, sched, fields, ctx, roots, None)
}

/// Branch-parallel staged execution over dependency levels; see the module
/// docs for semantics and determinism guarantees.
pub fn run_staged_levels_multi(
    spec: &NetworkSpec,
    sched: &Schedule,
    fields: &FieldSet,
    ctx: &mut Context,
    roots: &[NodeId],
) -> Result<Option<Vec<Field>>, EngineError> {
    run_staged_levels_session(spec, sched, fields, ctx, roots, None)
}

/// Upload one named input field, through the session's generation-checked
/// resident buffers when present, otherwise as a one-shot create + write.
fn upload_field(
    fields: &FieldSet,
    ctx: &mut Context,
    name: &str,
    small: bool,
    n: usize,
    session: Option<&mut SessionState>,
) -> Result<BufferId, EngineError> {
    match session {
        Some(state) => state.bind_input(ctx, fields, name, small),
        None => {
            let fv = check_field(fields, name, small, ctx.mode())?;
            let buf = ctx.create_buffer(lanes_for(fv.width, n))?;
            if ctx.mode() == ExecMode::Real {
                ctx.enqueue_write(buf, fv.data.as_ref().expect("real mode"))?;
            } else {
                ctx.enqueue_write_virtual(buf)?;
            }
            Ok(buf)
        }
    }
}

/// The shared download tail: one device-to-host read per root (uploading
/// degenerate bare-input roots first), then drain every remaining buffer
/// (session-resident inputs stay on the device).
#[allow(clippy::too_many_arguments)]
fn download_roots(
    spec: &NetworkSpec,
    fields: &FieldSet,
    ctx: &mut Context,
    roots: &[NodeId],
    mut session: Option<&mut SessionState>,
    mut dev: HashMap<NodeId, BufferId>,
    n: usize,
    tracer: &Option<Tracer>,
) -> Result<Option<Vec<Field>>, EngineError> {
    let real = ctx.mode() == ExecMode::Real;
    let mut out = real.then(Vec::new);
    let _download = dfg_trace::span!(tracer, "staged.download", roots = roots.len());
    for &root in roots {
        let result_buf = match dev.get(&root) {
            Some(&buf) => buf,
            None => {
                // Degenerate network: the root is a bare input never
                // consumed by a kernel. Upload it so the device-to-host
                // protocol holds.
                let FilterOp::Input { name, small } = &spec.node(root).op else {
                    unreachable!("non-input root must have been computed")
                };
                let buf = upload_field(fields, ctx, name, *small, n, session.as_deref_mut())?;
                dev.insert(root, buf);
                buf
            }
        };
        if let Some(fields_out) = out.as_mut() {
            let data = ctx.enqueue_read(result_buf)?;
            fields_out.push(Field {
                width: spec.width(root),
                ncells: n,
                data,
            });
        } else {
            ctx.enqueue_read_virtual(result_buf)?;
        }
    }
    // Drain the device (session-resident inputs stay for the next cycle).
    for (_, buf) in dev {
        if !session.as_deref().is_some_and(|s| s.is_resident(buf)) {
            ctx.release(buf)?;
        }
    }
    Ok(out)
}

/// [`run_staged_multi`] with optional session state: input uploads go
/// through the session's generation-checked resident buffers, which the
/// drain passes leave on the device. With `session == None` the behavior
/// is byte-identical to the one-shot path.
pub(crate) fn run_staged_multi_session(
    spec: &NetworkSpec,
    sched: &Schedule,
    fields: &FieldSet,
    ctx: &mut Context,
    roots: &[NodeId],
    mut session: Option<&mut SessionState>,
) -> Result<Option<Vec<Field>>, EngineError> {
    let n = fields.ncells();
    let tracer = ctx.tracer().cloned();
    let mut dev: HashMap<NodeId, BufferId> = HashMap::new();

    for (step, &id) in sched.order.iter().enumerate() {
        let node = spec.node(id);
        match &node.op {
            // Uploaded lazily at first consumer.
            FilterOp::Input { .. } => {}
            op => {
                // Make every operand resident (this is where lazy input
                // uploads happen, in port order — matching memreq's staged
                // simulation exactly).
                for &input in &node.inputs {
                    if dev.contains_key(&input) {
                        continue;
                    }
                    let FilterOp::Input { name, small } = &spec.node(input).op else {
                        unreachable!("non-input operand {input} not yet resident");
                    };
                    let _upload = dfg_trace::span!(tracer, "staged.upload", port = name.as_str());
                    let buf = upload_field(fields, ctx, name, *small, n, session.as_deref_mut())?;
                    dev.insert(input, buf);
                }
                let prim = Primitive::from_filter_op(op).expect("compute op or const");
                let out = ctx.create_buffer(lanes_for(op.width(), n))?;
                let inputs: Vec<BufferId> = node.inputs.iter().map(|i| dev[i]).collect();
                {
                    let _kernel = dfg_trace::span!(tracer, "staged.kernel", kernel = prim.name());
                    ctx.launch(&prim, &inputs, out, n)?;
                }
                dev.insert(id, out);
            }
        }
        // Reference counting: release buffers whose last consumer ran
        // (session-resident inputs stay on the device).
        for dead in &sched.free_after[step] {
            if let Some(buf) = dev.remove(dead) {
                if !session.as_deref().is_some_and(|s| s.is_resident(buf)) {
                    ctx.release(buf)?;
                }
            }
        }
    }

    download_roots(spec, fields, ctx, roots, session, dev, n, &tracer)
}

/// [`run_staged_levels_multi`] with optional session state (same contract
/// as [`run_staged_multi_session`]).
///
/// Per level: uploads happen first (nodes in ascending-id order, ports in
/// declared order), then every kernel of the level launches as one batch.
/// A single-kernel level goes through the plain [`Context::launch`] path —
/// no batch, no `exec.*` spans — so a linear chain traced here looks
/// exactly like the serial executor. Buffers are still freed by reference
/// count, but the free point is the end of the level whose kernels consumed
/// the last reference.
pub(crate) fn run_staged_levels_session(
    spec: &NetworkSpec,
    sched: &Schedule,
    fields: &FieldSet,
    ctx: &mut Context,
    roots: &[NodeId],
    mut session: Option<&mut SessionState>,
) -> Result<Option<Vec<Field>>, EngineError> {
    let n = fields.ncells();
    let tracer = ctx.tracer().cloned();
    let mut dev: HashMap<NodeId, BufferId> = HashMap::new();

    let is_root = {
        let mut v = vec![false; spec.len()];
        for &r in roots {
            v[r.idx()] = true;
        }
        v
    };
    let mut live_refs = sched.consumers.clone();

    for (depth, level) in sched.levels.iter().enumerate() {
        // Stage every kernel of the level: operand uploads (lazy, port
        // order) and output allocation happen serially up front, in
        // ascending node-id order, keeping the event stream deterministic.
        let mut staged: Vec<(NodeId, Primitive, Vec<BufferId>, BufferId)> = Vec::new();
        for &id in level {
            let node = spec.node(id);
            let op = &node.op;
            if matches!(op, FilterOp::Input { .. }) {
                continue; // uploaded lazily at first consumer
            }
            for &input in &node.inputs {
                if dev.contains_key(&input) {
                    continue;
                }
                let FilterOp::Input { name, small } = &spec.node(input).op else {
                    unreachable!("non-input operand {input} is in an earlier level");
                };
                let _upload = dfg_trace::span!(tracer, "staged.upload", port = name.as_str());
                let buf = upload_field(fields, ctx, name, *small, n, session.as_deref_mut())?;
                dev.insert(input, buf);
            }
            let prim = Primitive::from_filter_op(op).expect("compute op or const");
            let out = ctx.create_buffer(lanes_for(op.width(), n))?;
            let inputs: Vec<BufferId> = node.inputs.iter().map(|i| dev[i]).collect();
            dev.insert(id, out);
            staged.push((id, prim, inputs, out));
        }

        match staged.len() {
            0 => {} // a level of bare inputs
            1 => {
                let (_, prim, inputs, out) = &staged[0];
                let _kernel = dfg_trace::span!(tracer, "staged.kernel", kernel = prim.name());
                ctx.launch(prim, inputs, *out, n)?;
            }
            fanout => {
                // All spans are emitted from this coordinating thread: the
                // level span wraps the batch, then one zero-width task span
                // per kernel records its measured body wall time.
                let level_span = dfg_trace::span!(
                    tracer,
                    "exec.level",
                    level = depth,
                    fanout = fanout,
                    queue_depth = dfg_exec::global().queue_depth(),
                );
                level_span.virt_start(ctx.clock_seconds());
                let launches: Vec<BatchLaunch<'_>> = staged
                    .iter()
                    .map(|(_, prim, inputs, out)| BatchLaunch {
                        kernel: prim as &dyn DeviceKernel,
                        inputs: inputs.clone(),
                        output: *out,
                        n,
                    })
                    .collect();
                let wall_ns = ctx.launch_batch(&launches)?;
                level_span.virt_end(ctx.clock_seconds());
                drop(level_span);
                for ((id, prim, _, _), ns) in staged.iter().zip(wall_ns) {
                    dfg_trace::span!(
                        tracer,
                        "exec.task",
                        kernel = prim.name(),
                        node = id.idx() as u64,
                        wall_ns = ns,
                    );
                }
            }
        }

        // Reference counting at level granularity: every port consumed by
        // this level's kernels retires one reference; buffers hitting zero
        // are released now (session-resident inputs stay on the device).
        for &id in level {
            let node = spec.node(id);
            if matches!(node.op, FilterOp::Input { .. }) {
                continue;
            }
            for &input in &node.inputs {
                let r = &mut live_refs[input.idx()];
                debug_assert!(*r > 0, "refcount underflow at {input}");
                *r -= 1;
                if *r == 0 && !is_root[input.idx()] {
                    if let Some(buf) = dev.remove(&input) {
                        if !session.as_deref().is_some_and(|s| s.is_resident(buf)) {
                            ctx.release(buf)?;
                        }
                    }
                }
            }
        }
    }

    download_roots(spec, fields, ctx, roots, session, dev, n, &tracer)
}
