//! The three execution strategies of §III-C.
//!
//! Each executor drives the *same* dataflow schedule and the *same*
//! primitive kernel library through a different data-movement protocol:
//!
//! | strategy  | kernels                     | intermediates     | transfers |
//! |-----------|-----------------------------|-------------------|-----------|
//! | roundtrip | one per filter              | host memory       | per-port upload, per-kernel download |
//! | staged    | one per filter (+decompose, +const fill) | device global memory (ref-counted) | inputs once, result once |
//! | fusion    | one fused kernel            | device registers  | inputs once, result once |
//!
//! The executors' buffer allocation orders intentionally mirror
//! `dfg_dataflow::memreq`'s analytical simulation so that measured
//! high-water marks and predicted requirements agree exactly.

mod fusion;
mod roundtrip;
mod staged;
mod streamed;

pub use fusion::{run_fusion, run_fusion_multi};
pub use roundtrip::{run_roundtrip, run_roundtrip_multi};
pub use staged::{run_staged, run_staged_levels_multi, run_staged_multi};
pub use streamed::{run_streamed_fusion, StreamReport};

pub(crate) use fusion::run_fusion_multi_session;
pub(crate) use roundtrip::run_roundtrip_multi_session;
pub(crate) use staged::{run_staged_levels_session, run_staged_multi_session};
pub(crate) use streamed::{run_streamed_fusion_session, StreamRetry};

use dfg_dataflow::Width;
use dfg_ocl::ExecMode;

use crate::error::EngineError;
use crate::fields::{FieldSet, FieldValue};

/// Lanes a buffer of `width` occupies for `ncells` elements.
pub(crate) fn lanes_for(width: Width, ncells: usize) -> usize {
    match width {
        Width::Scalar => ncells,
        Width::Vec4 => 4 * ncells,
        Width::Small => 3,
    }
}

/// Validate that a host field exists, has the declared width, and (in real
/// mode) carries data of the right length.
pub(crate) fn check_field<'a>(
    fields: &'a FieldSet,
    name: &str,
    expect_small: bool,
    mode: ExecMode,
) -> Result<&'a FieldValue, EngineError> {
    let fv = fields.get(name).ok_or_else(|| EngineError::MissingField {
        name: name.to_string(),
    })?;
    let is_small = fv.width == Width::Small;
    if is_small != expect_small {
        return Err(EngineError::ModeMismatch {
            detail: format!(
                "field `{name}` width {:?} does not match its use ({})",
                fv.width,
                if expect_small {
                    "small"
                } else {
                    "problem-sized"
                }
            ),
        });
    }
    match (&fv.data, mode) {
        (None, ExecMode::Real) => Err(EngineError::ModeMismatch {
            detail: format!("field `{name}` is virtual but the engine is in real mode"),
        }),
        (Some(data), _) => {
            let expected = if expect_small { 3 } else { fields.ncells() };
            if data.len() != expected {
                return Err(EngineError::FieldSize {
                    name: name.to_string(),
                    expected,
                    found: data.len(),
                });
            }
            Ok(fv)
        }
        (None, ExecMode::Model) => Ok(fv),
    }
}
