//! Persistent execution sessions for the in-situ hot loop (§V).
//!
//! An in-situ host calls the framework with the same expression, the same
//! mesh, and mostly-the-same fields every simulation cycle. A [`Session`]
//! amortizes everything that does not change across cycles:
//!
//! - **one device context for the whole session** — with buffer pooling
//!   enabled ([`dfg_ocl::Context::set_pooling`]), so transient buffers
//!   (fusion outputs, staged intermediates) reuse their backing storage
//!   instead of re-allocating and re-zeroing each cycle;
//! - **resident source fields with generation-based dirty tracking** — the
//!   session keeps a device copy of every input it has uploaded, tagged
//!   with the [`crate::FieldValue::generation`] it was uploaded at, and
//!   re-uploads only fields whose generation changed. Static mesh
//!   coordinates upload exactly once per session;
//! - **a compiled-kernel cache** — fused (and streamed) codegen output is
//!   keyed by [`dfg_dataflow::NetworkSpec::structural_hash`], so dynamic
//!   code generation and `record_compile` happen once per distinct network,
//!   not once per cycle.
//!
//! Profiles are still per-cycle: each [`Session::derive`] resets the
//! context's event log and virtual clock first, so a cycle's
//! [`ExecReport`] covers that cycle alone (with the high-water mark
//! re-seeded from the resident bytes). Trace spans are likewise scoped per
//! cycle, and cached work is tagged with `upload.skipped` /
//! `codegen.cached` spans so `dfgc profile` shows the amortization.
//!
//! One-shot [`Engine::derive`] is untouched: it still builds a fresh,
//! unpooled context per run, preserving the paper's Table II counts and
//! Figure 5/6 model numbers exactly.

use std::borrow::BorrowMut;
use std::collections::HashMap;
use std::time::Instant;

use dfg_dataflow::{NetworkSpec, NodeId, Schedule, Strategy};
use dfg_kernels::FusedProgram;
use dfg_ocl::{BufferId, Context, ExecMode};
use dfg_trace::span;

use crate::engine::{Engine, ExecReport};
use crate::error::EngineError;
use crate::fields::FieldSet;
use crate::recovery::{run_with_recovery, RecoveryCtx, Request};
use crate::strategies::{
    check_field, lanes_for, run_fusion_multi_session, run_roundtrip_multi_session,
    run_staged_multi_session, run_streamed_fusion_session,
};

/// A device-resident copy of one host input field.
pub(crate) struct Resident {
    pub buf: BufferId,
    /// Generation of the host field at upload time.
    pub generation: u64,
    pub lanes: usize,
}

/// A cached fusion codegen result.
pub(crate) struct CachedProgram {
    pub program: FusedProgram,
    pub source: String,
}

/// Counters a session accumulates; see [`Session::stats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Completed `derive`/`derive_many` cycles.
    pub cycles: u64,
    /// Host→device uploads of input fields actually performed.
    pub uploads: u64,
    /// Uploads skipped because the resident copy was current.
    pub uploads_skipped: u64,
    /// Fusion codegen + compile runs (kernel-cache misses).
    pub codegen_compiles: u64,
    /// Kernel-cache hits.
    pub codegen_cached: u64,
    /// Requests served by a merged cross-request network (`dfg-serve`
    /// batch fusion) instead of a standalone execution.
    pub merged: u64,
    /// Kernel launches the optimizer pipeline eliminated, summed over
    /// cycles: each cycle saves `OptStats::filters_eliminated` launches
    /// relative to running the unoptimized network.
    pub opt_saved_kernels: u64,
    /// Residents found corrupted by pre-skip verification and healed in
    /// place by re-uploading from the host copy (see
    /// `EngineOptions::verify`; always 0 with verification off).
    pub integrity_healed: u64,
}

/// Cross-cycle state threaded through the strategy executors.
#[derive(Default)]
pub(crate) struct SessionState {
    pub resident: HashMap<String, Resident>,
    pub programs: HashMap<u64, CachedProgram>,
    pub stats: SessionStats,
    /// Cancellation handle for the in-flight request, polled by the
    /// recovery driver between ladder rungs and retries. Installed (and
    /// cleared) per request by the serving layer.
    pub cancel: Option<crate::cancel::CancelToken>,
}

impl SessionState {
    /// Bytes held by resident field copies (stay allocated between cycles).
    pub fn resident_bytes(&self) -> u64 {
        self.resident.values().map(|r| r.lanes as u64 * 4).sum()
    }

    /// Whether `buf` is a resident input (and must not be released by an
    /// executor's drain pass).
    pub fn is_resident(&self, buf: BufferId) -> bool {
        self.resident.values().any(|r| r.buf == buf)
    }

    /// Bind host field `name` to its device-resident buffer, uploading only
    /// when the field's generation changed since the last upload (or on
    /// first use). Emits an `upload.skipped` span on a clean hit.
    pub fn bind_input(
        &mut self,
        ctx: &mut Context,
        fields: &FieldSet,
        name: &str,
        small: bool,
    ) -> Result<BufferId, EngineError> {
        let fv = check_field(fields, name, small, ctx.mode())?;
        let lanes = lanes_for(fv.width, fields.ncells());
        let real = ctx.mode() == ExecMode::Real;
        let tracer = ctx.tracer().cloned();
        if let Some(r) = self.resident.get(name) {
            if r.lanes == lanes {
                let buf = r.buf;
                if r.generation == fv.generation() {
                    // Before trusting the resident enough to skip its
                    // re-upload, revalidate it (a no-op under
                    // `VerifyPolicy::Off`). A corrupted resident is healed
                    // in place: fall through to the re-upload path, which
                    // overwrites the bad bits and relearns the checksum.
                    match ctx.verify_buffer(buf) {
                        Ok(()) => {
                            self.stats.uploads_skipped += 1;
                            drop(span!(tracer, "upload.skipped", field = name));
                            return Ok(buf);
                        }
                        Err(e) if e.is_integrity() => {
                            self.stats.integrity_healed += 1;
                            let kind = match &e {
                                dfg_ocl::OclError::IntegrityViolation { kind, .. } => kind.name(),
                                _ => "unknown",
                            };
                            drop(span!(
                                tracer,
                                "recover.integrity",
                                field = name,
                                kind = kind,
                                healed = "reupload",
                            ));
                        }
                        Err(e) => return Err(e.into()),
                    }
                }
                if real {
                    ctx.enqueue_write(buf, fv.data.as_ref().expect("real mode"))?;
                } else {
                    ctx.enqueue_write_virtual(buf)?;
                }
                self.stats.uploads += 1;
                self.resident.get_mut(name).expect("present").generation = fv.generation();
                return Ok(buf);
            }
            // Lane count changed (mesh resize): drop the stale copy.
            let stale = self.resident.remove(name).expect("present");
            ctx.release(stale.buf)?;
        }
        let buf = ctx.create_buffer(lanes)?;
        if real {
            ctx.enqueue_write(buf, fv.data.as_ref().expect("real mode"))?;
        } else {
            ctx.enqueue_write_virtual(buf)?;
        }
        self.stats.uploads += 1;
        self.resident.insert(
            name.to_string(),
            Resident {
                buf,
                generation: fv.generation(),
                lanes,
            },
        );
        Ok(buf)
    }
}

/// What one in-session execution produced, before per-entry-point
/// packaging into an [`ExecReport`].
struct RunOut {
    fields_out: Option<Vec<crate::Field>>,
    generated_source: Option<String>,
    profile: dfg_ocl::ProfileReport,
    recovery: Option<crate::recovery::RecoveryReport>,
}

/// Cache key for a fused program: the network's structure plus the roots
/// it was fused for (and whether the streamed variant generated it).
pub(crate) fn program_key(spec: &NetworkSpec, roots: &[NodeId], streamed: bool) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    spec.structural_hash().hash(&mut h);
    roots.hash(&mut h);
    streamed.hash(&mut h);
    h.finish()
}

/// A long-lived execution context for in-situ loops; create one with
/// [`Engine::session`] and drive it every cycle with [`Session::derive`].
///
/// ```
/// use dfg_core::{Engine, FieldSet, Strategy};
/// use dfg_ocl::DeviceProfile;
///
/// let mut engine = Engine::new(DeviceProfile::intel_x5660());
/// let mut session = engine.session();
/// let mut fields = FieldSet::new(8);
/// fields.insert_scalar("u", vec![3.0; 8]).unwrap();
///
/// for cycle in 0..3 {
///     if cycle > 0 {
///         fields.update_scalar("u", &vec![cycle as f32; 8]).unwrap();
///     }
///     let report = session
///         .derive("mag = sqrt(u*u)", &fields, Strategy::Fusion)
///         .unwrap();
///     assert!(report.field.is_some());
/// }
/// let stats = session.stats().clone();
/// assert_eq!(stats.cycles, 3);
/// assert_eq!(stats.codegen_compiles, 1, "codegen once, cached after");
/// ```
///
/// A session is generic over how it holds its engine: `Session<&mut
/// Engine>` (the default of [`Engine::session`]) borrows a host-owned
/// engine for the life of the session, while `Session<Engine>` — an
/// *owned* session, from [`Engine::into_session`] — carries the engine
/// with it and can be stored in long-lived registries such as
/// [`crate::SessionRegistry`], the substrate of the multi-tenant
/// `dfg-serve` server.
pub struct Session<E: BorrowMut<Engine> = Engine> {
    engine: E,
    pub(crate) ctx: Context,
    pub(crate) state: SessionState,
}

impl Engine {
    /// Open a persistent session: one pooled device context plus resident
    /// fields and a compiled-kernel cache, amortized across every
    /// [`Session::derive`] until the session is dropped (or [`Session::end`]
    /// releases its buffers explicitly).
    pub fn session(&mut self) -> Session<&mut Engine> {
        let mut ctx = self.traced_context();
        ctx.set_pooling(true);
        Session {
            engine: self,
            ctx,
            state: SessionState::default(),
        }
    }

    /// Like [`Engine::session`], but the session takes ownership of the
    /// engine — no borrow ties it to the caller's stack frame, so it can be
    /// stored (per tenant, per connection, …) for as long as the host
    /// wants.
    ///
    /// ```
    /// use dfg_core::{Engine, FieldSet, Session, Strategy};
    /// use dfg_ocl::DeviceProfile;
    ///
    /// let engine = Engine::new(DeviceProfile::intel_x5660());
    /// let mut session: Session = engine.into_session(); // owns the engine
    /// let mut fields = FieldSet::new(8);
    /// fields.insert_scalar("u", vec![4.0; 8]).unwrap();
    /// let report = session
    ///     .derive("r = sqrt(u)", &fields, Strategy::Fusion)
    ///     .unwrap();
    /// assert_eq!(report.field.unwrap().data, vec![2.0; 8]);
    /// ```
    pub fn into_session(self) -> Session {
        let mut ctx = self.traced_context();
        ctx.set_pooling(true);
        Session {
            engine: self,
            ctx,
            state: SessionState::default(),
        }
    }
}

impl<E: BorrowMut<Engine>> Session<E> {
    /// Derive one field for this cycle. Same contract as
    /// [`Engine::derive`], but uploads, codegen, and buffer allocations are
    /// amortized across cycles; the returned report covers this cycle only.
    pub fn derive(
        &mut self,
        source: &str,
        fields: &FieldSet,
        strategy: Strategy,
    ) -> Result<ExecReport, EngineError> {
        self.run(source, None, fields, strategy)
            .map(|(_, report)| report)
    }

    /// Derive several named fields in one execution (see
    /// [`Engine::derive_many`]), amortized across cycles.
    pub fn derive_many(
        &mut self,
        source: &str,
        outputs: &[&str],
        fields: &FieldSet,
        strategy: Strategy,
    ) -> Result<(Vec<(String, crate::Field)>, ExecReport), EngineError> {
        self.run(source, Some(outputs), fields, strategy)
    }

    fn run(
        &mut self,
        source: &str,
        outputs: Option<&[&str]>,
        fields: &FieldSet,
        strategy: Strategy,
    ) -> Result<(Vec<(String, crate::Field)>, ExecReport), EngineError> {
        let mark = self.engine.borrow().trace_mark();
        // Per-cycle profile: clear events, rewind the virtual clock, and
        // re-seed the high-water mark from the resident bytes.
        self.ctx.reset_profile();
        let tracer = self.engine.borrow().tracer().cloned();
        let root = span!(
            tracer,
            "derive",
            strategy = strategy.name(),
            session = true,
            cycle = self.state.stats.cycles,
        );
        let prog = self.engine.borrow_mut().compile_cached(source)?;
        let spec = prog.spec;
        let roots: Vec<NodeId> = match outputs {
            None => vec![spec.result],
            Some(names) => {
                let mut roots = Vec::with_capacity(names.len());
                for &name in names {
                    // The compile step resolved each name's last binding and
                    // remapped it through the optimizer.
                    let root = prog.outputs.get(name).copied().ok_or_else(|| {
                        EngineError::NoSuchOutput {
                            name: name.to_string(),
                        }
                    })?;
                    roots.push(root);
                }
                roots
            }
        };
        let sched = {
            let _plan = span!(tracer, "plan", nodes = spec.iter().count());
            Schedule::for_roots(&spec, &roots)?
        };
        let fusion_label = match outputs {
            Some(_) => "multi".to_string(),
            None => spec
                .node(spec.result)
                .name
                .clone()
                .unwrap_or_else(|| "expr".to_string()),
        };
        let t0 = Instant::now();
        let out = self.exec_roots(&spec, &sched, &roots, fields, strategy, &fusion_label)?;
        let wall = t0.elapsed();
        self.state.stats.cycles += 1;
        self.state.stats.opt_saved_kernels += prog.opt.filters_eliminated() as u64;
        debug_assert_eq!(
            self.ctx.in_use_bytes(),
            self.state.resident_bytes(),
            "session executor leaked buffers beyond the resident fields"
        );
        drop(root);
        let trace = self.engine.borrow().snapshot_since(mark);
        let integrity = self.ctx.integrity_stats();
        let report = |field, trace| ExecReport {
            field,
            profile: out.profile,
            wall,
            generated_source: out.generated_source,
            trace,
            recovery: out.recovery,
            integrity,
        };
        Ok(match (outputs, out.fields_out) {
            (Some(names), Some(v)) => {
                let named = names.iter().map(|n| n.to_string()).zip(v).collect();
                (named, report(None, trace))
            }
            (None, Some(mut v)) => {
                // Single-root run: the one field is returned via the report.
                let field = v.pop().expect("one root, one field");
                (Vec::new(), report(Some(field), trace))
            }
            (_, None) => (Vec::new(), report(None, trace)),
        })
    }

    /// Execute an already-lowered network over explicit `roots` in this
    /// session — the substrate of `dfg-serve`'s cross-request fusion,
    /// where several tenants' expressions are merged (see
    /// `dfg_dataflow::merge_networks`) and computed as one multi-output
    /// network. The engine's optimizer is *not* applied here; pass a
    /// pre-optimized spec. Returns one field per root, in root order
    /// (empty in model mode), plus the cycle report.
    pub fn derive_network(
        &mut self,
        spec: &NetworkSpec,
        roots: &[NodeId],
        fields: &FieldSet,
        strategy: Strategy,
    ) -> Result<(Vec<crate::Field>, ExecReport), EngineError> {
        let mark = self.engine.borrow().trace_mark();
        self.ctx.reset_profile();
        let tracer = self.engine.borrow().tracer().cloned();
        let root = span!(
            tracer,
            "derive",
            strategy = strategy.name(),
            session = true,
            cycle = self.state.stats.cycles,
            roots = roots.len(),
        );
        let sched = {
            let _plan = span!(tracer, "plan", nodes = spec.iter().count());
            Schedule::for_roots(spec, roots)?
        };
        let t0 = Instant::now();
        let out = self.exec_roots(spec, &sched, roots, fields, strategy, "multi")?;
        let wall = t0.elapsed();
        self.state.stats.cycles += 1;
        debug_assert_eq!(
            self.ctx.in_use_bytes(),
            self.state.resident_bytes(),
            "network executor leaked buffers beyond the resident fields"
        );
        drop(root);
        Ok((
            out.fields_out.unwrap_or_default(),
            ExecReport {
                field: None,
                profile: out.profile,
                wall,
                generated_source: out.generated_source,
                trace: self.engine.borrow().snapshot_since(mark),
                recovery: out.recovery,
                integrity: self.ctx.integrity_stats(),
            },
        ))
    }

    /// The shared execution core of [`Session::run`] and
    /// [`Session::derive_network`]: recovery-or-plain dispatch over the
    /// session's context and cross-cycle state.
    fn exec_roots(
        &mut self,
        spec: &NetworkSpec,
        sched: &Schedule,
        roots: &[NodeId],
        fields: &FieldSet,
        strategy: Strategy,
        fusion_label: &str,
    ) -> Result<RunOut, EngineError> {
        let tracer = self.engine.borrow().tracer().cloned();
        if let Some(tok) = &self.state.cancel {
            tok.check()?;
        }
        if self.engine.borrow().options().recovery.enabled() {
            let outcome = run_with_recovery(
                RecoveryCtx {
                    options: self.engine.borrow().options(),
                    tracer: tracer.clone(),
                    device: self.engine.borrow().device(),
                },
                spec,
                sched,
                fields,
                roots,
                Request::Strategy(strategy),
                &mut self.ctx,
                Some(&mut self.state),
            )?;
            let profile = match &outcome.alt_profile {
                Some((report, _)) => report.clone(),
                None => self.ctx.report(),
            };
            return Ok(RunOut {
                fields_out: outcome.fields_out,
                generated_source: outcome.generated_source,
                profile,
                recovery: outcome.recovery,
            });
        }
        let exec_span = span!(
            tracer,
            &format!("execute.{}", strategy.name()),
            ncells = fields.ncells(),
        );
        exec_span.virt_start(self.ctx.clock_seconds());
        let ctx = &mut self.ctx;
        let state = &mut self.state;
        let (fields_out, generated_source) = match strategy {
            Strategy::Roundtrip => (
                run_roundtrip_multi_session(
                    spec,
                    sched,
                    fields,
                    ctx,
                    self.engine.borrow().options().roundtrip_dedup_uploads,
                    roots,
                    Some(state),
                )?,
                None,
            ),
            Strategy::Staged => {
                let out = if self.engine.borrow().options().branch_parallel {
                    crate::strategies::run_staged_levels_session(
                        spec,
                        sched,
                        fields,
                        ctx,
                        roots,
                        Some(state),
                    )?
                } else {
                    run_staged_multi_session(spec, sched, fields, ctx, roots, Some(state))?
                };
                (out, None)
            }
            Strategy::Fusion => {
                let (f, src) =
                    run_fusion_multi_session(spec, roots, fields, ctx, fusion_label, Some(state))?;
                (f, Some(src))
            }
        };
        exec_span.virt_end(self.ctx.clock_seconds());
        drop(exec_span);
        Ok(RunOut {
            fields_out,
            generated_source,
            profile: self.ctx.report(),
            recovery: None,
        })
    }

    /// Streamed fusion under the session (see [`Engine::derive_streamed`]):
    /// slab transfers are inherent to streaming, but codegen/compile is
    /// served from the session's kernel cache and the slab buffers come
    /// from the context's pool.
    pub fn derive_streamed(
        &mut self,
        source: &str,
        fields: &FieldSet,
        device_budget_bytes: Option<u64>,
    ) -> Result<ExecReport, EngineError> {
        let mark = self.engine.borrow().trace_mark();
        self.ctx.reset_profile();
        let tracer = self.engine.borrow().tracer().cloned();
        let root = span!(
            tracer,
            "derive",
            strategy = "streamed",
            session = true,
            cycle = self.state.stats.cycles,
        );
        if let Some(tok) = &self.state.cancel {
            tok.check()?;
        }
        let prog = self.engine.borrow_mut().compile_cached(source)?;
        let spec = prog.spec;
        self.state.stats.opt_saved_kernels += prog.opt.filters_eliminated() as u64;
        let budget = device_budget_bytes.unwrap_or(self.engine.borrow().device().global_mem_bytes);
        let label = spec
            .node(spec.result)
            .name
            .clone()
            .unwrap_or_else(|| "expr".to_string());
        let t0 = Instant::now();
        if self.engine.borrow().options().recovery.enabled() {
            let sched = {
                let _plan = span!(tracer, "plan", nodes = spec.iter().count());
                Schedule::new(&spec)?
            };
            let roots = [spec.result];
            let outcome = run_with_recovery(
                RecoveryCtx {
                    options: self.engine.borrow().options(),
                    tracer: tracer.clone(),
                    device: self.engine.borrow().device(),
                },
                &spec,
                &sched,
                fields,
                &roots,
                Request::Streamed { budget },
                &mut self.ctx,
                Some(&mut self.state),
            )?;
            let wall = t0.elapsed();
            self.state.stats.cycles += 1;
            debug_assert_eq!(
                self.ctx.in_use_bytes(),
                self.state.resident_bytes(),
                "recovered streamed session executor leaked buffers"
            );
            let profile = match &outcome.alt_profile {
                Some((report, _)) => report.clone(),
                None => self.ctx.report(),
            };
            drop(root);
            return Ok(ExecReport {
                field: outcome
                    .fields_out
                    .map(|mut v| v.pop().expect("one root, one field")),
                profile,
                wall,
                generated_source: outcome.generated_source,
                trace: self.engine.borrow().snapshot_since(mark),
                recovery: outcome.recovery,
                integrity: self.ctx.integrity_stats(),
            });
        }
        let exec_span = span!(
            tracer,
            "execute.streamed",
            ncells = fields.ncells(),
            budget_bytes = budget,
        );
        exec_span.virt_start(self.ctx.clock_seconds());
        let stream_opts = self.engine.borrow().options().stream;
        let (field, src, stream) = run_streamed_fusion_session(
            &spec,
            fields,
            &mut self.ctx,
            &label,
            budget,
            stream_opts,
            None,
            Some(&mut self.state),
        )?;
        exec_span.virt_end(self.ctx.clock_seconds());
        drop(
            exec_span
                .meta("slabs", stream.slabs)
                .meta("depth", stream.depth),
        );
        let wall = t0.elapsed();
        self.state.stats.cycles += 1;
        debug_assert_eq!(
            self.ctx.in_use_bytes(),
            self.state.resident_bytes(),
            "streamed session executor leaked buffers"
        );
        drop(root);
        Ok(ExecReport {
            field,
            profile: self.ctx.report(),
            wall,
            generated_source: Some(src),
            trace: self.engine.borrow().snapshot_since(mark),
            recovery: None,
            integrity: self.ctx.integrity_stats(),
        })
    }

    /// Install (or clear, with `None`) the cancellation token polled during
    /// this session's derivations: at entry to each derive and between
    /// recovery-ladder rungs and retries. A fired token aborts the run with
    /// [`EngineError::Cancelled`]; rollback leaves the session leak-free.
    pub fn set_cancel(&mut self, token: Option<crate::CancelToken>) {
        self.state.cancel = token;
    }

    /// Counters accumulated so far (uploads skipped, cache hits, …).
    pub fn stats(&self) -> &SessionStats {
        &self.state.stats
    }

    /// Allocations served by the context's buffer pool so far.
    pub fn pool_hits(&self) -> u64 {
        self.ctx.pool_hits()
    }

    /// Bytes currently parked in the context's buffer pool awaiting reuse.
    pub fn pooled_bytes(&self) -> u64 {
        self.ctx.pooled_bytes()
    }

    /// Bytes held by device-resident input fields between cycles.
    pub fn resident_bytes(&self) -> u64 {
        self.state.resident_bytes()
    }

    /// The session's device context (profiling/diagnostic access).
    pub fn context(&self) -> &Context {
        &self.ctx
    }

    /// Mutable access to the session's device context — a hook for
    /// integrity tests that corrupt or reconfigure storage directly.
    #[doc(hidden)]
    pub fn context_mut(&mut self) -> &mut Context {
        &mut self.ctx
    }

    /// Close the session: release every resident buffer and return the
    /// final stats. (Dropping the session frees everything too; `end` is
    /// for hosts that want the counters and leak-checking.)
    pub fn end(mut self) -> SessionStats {
        for (_, r) in self.state.resident.drain() {
            let _ = self.ctx.release(r.buf);
        }
        debug_assert_eq!(self.ctx.in_use_bytes(), 0, "session leaked buffers");
        self.state.stats
    }
}
