//! Resilient execution: retry with backoff, and a strategy fallback chain.
//!
//! The paper's Figure 7 has a gray "GPU failed" series — when the staged
//! working set exceeds the M2050's memory the run simply dies. This module
//! gives the engine a recovery story instead:
//!
//! * **transient faults** (injected transfer/launch failures that succeed
//!   when re-issued) are retried up to [`RecoveryPolicy::max_retries`]
//!   times, with exponential backoff accounted on the device's *virtual
//!   clock* (never the wall clock, so recovery behavior is deterministic
//!   and identical in [`dfg_ocl::ExecMode::Model`] and `Real` modes);
//! * **persistent faults** (out-of-memory, compile failures) trigger a
//!   fallback chain Fusion → Staged → Streamed (slabbed) → Roundtrip →
//!   CPU fusion, re-planned through `dfg_dataflow::memreq`'s exact memory
//!   estimates so hopeless candidates are skipped without being attempted;
//! * **every attempt is leak-free**: the context's allocations are marked
//!   before each attempt and rolled back after a failure
//!   ([`dfg_ocl::Context::rollback`]), session-resident bindings created by
//!   the failed attempt are pruned, and the buffer pool is trimmed before a
//!   post-OOM fallback so parked slots never cause an avoidable failure.
//!
//! Because the simulated device executes kernel bodies identically on every
//! profile (profiles shape the virtual clock and capacity, not the
//! arithmetic), a run that falls back — even to the CPU profile — produces
//! output bytes bit-identical to a fault-free run of the level it completed
//! at. Each retry emits a `recover.retry` span and each level switch a
//! `recover.fallback` span, with the triggering fault as metadata.

use dfg_dataflow::{memreq_units, NetworkSpec, NodeId, Schedule, Strategy};
use dfg_ocl::{Context, DeviceKind, DeviceProfile, OclError, ProfileReport};
use dfg_trace::{span, Tracer};

use crate::engine::EngineOptions;
use crate::error::EngineError;
use crate::fields::{Field, FieldSet};
use crate::session::SessionState;
use crate::strategies::{
    run_fusion_multi_session, run_roundtrip_multi_session, run_staged_levels_session,
    run_staged_multi_session, run_streamed_fusion_session, StreamReport, StreamRetry,
};

/// How the engine responds to device failures; part of
/// [`EngineOptions`](crate::EngineOptions). The default policy is disabled
/// (fail fast, exactly the pre-recovery behavior).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Retries per execution level for *transient* faults (0 = never retry).
    pub max_retries: u32,
    /// Initial retry backoff in virtual microseconds, doubled per retry
    /// within a level. Accounted on the device's virtual clock.
    pub backoff_us: u64,
    /// Whether persistent faults walk the strategy fallback chain.
    pub fallback: bool,
}

impl RecoveryPolicy {
    /// No retries, no fallback: failures surface immediately.
    pub fn disabled() -> Self {
        RecoveryPolicy {
            max_retries: 0,
            backoff_us: 0,
            fallback: false,
        }
    }

    /// A production-shaped policy: 3 retries starting at 100 µs virtual
    /// backoff, with the full fallback chain.
    pub fn resilient() -> Self {
        RecoveryPolicy {
            max_retries: 3,
            backoff_us: 100,
            fallback: true,
        }
    }

    /// Whether the policy does anything at all.
    pub fn enabled(&self) -> bool {
        self.max_retries > 0 || self.fallback
    }
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy::disabled()
    }
}

/// One rung of the fallback ladder: a way of executing the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecLevel {
    /// Single fused kernel on the engine's device.
    Fusion,
    /// Staged execution (device-resident intermediates).
    Staged,
    /// Streamed (z-slabbed) fusion bounded by the device budget.
    Streamed,
    /// Roundtrip execution (host-resident intermediates).
    Roundtrip,
    /// Fused execution on the host CPU profile — the terminal fallback;
    /// bit-identical output, CPU-speed virtual clock.
    CpuFusion,
}

impl ExecLevel {
    /// Name used in reports, trace spans, and CLI output.
    pub fn name(&self) -> &'static str {
        match self {
            ExecLevel::Fusion => "fusion",
            ExecLevel::Staged => "staged",
            ExecLevel::Streamed => "streamed",
            ExecLevel::Roundtrip => "roundtrip",
            ExecLevel::CpuFusion => "cpu.fusion",
        }
    }

    /// The single-pass strategy whose `memreq` estimate gates this level
    /// (`None` for streamed, whose footprint is budget-bound by design).
    fn planned_strategy(&self) -> Option<Strategy> {
        match self {
            ExecLevel::Fusion | ExecLevel::CpuFusion => Some(Strategy::Fusion),
            ExecLevel::Staged => Some(Strategy::Staged),
            ExecLevel::Roundtrip => Some(Strategy::Roundtrip),
            ExecLevel::Streamed => None,
        }
    }
}

impl std::fmt::Display for ExecLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What happened to one attempt (or considered candidate) during recovery.
#[derive(Debug, Clone, PartialEq)]
pub enum AttemptOutcome {
    /// The attempt completed; its output is the run's result.
    Succeeded,
    /// A transient fault; the level was retried after virtual backoff.
    Retried {
        /// Virtual seconds waited before the retry.
        backoff_seconds: f64,
    },
    /// A persistent fault (or exhausted retries); recovery moved to the
    /// next level of the fallback chain.
    FellBack,
    /// The planner's memory estimate says this level cannot fit, so it was
    /// skipped without being attempted.
    Skipped {
        /// Predicted peak bytes for the level.
        required_bytes: u64,
        /// Capacity of the device the level would run on.
        capacity_bytes: u64,
    },
    /// The final failure: no retries or fallback levels remained.
    Exhausted,
}

/// One entry in [`RecoveryReport::attempts`].
#[derive(Debug, Clone, PartialEq)]
pub struct AttemptRecord {
    /// The execution level attempted (or skipped).
    pub level: ExecLevel,
    /// What happened.
    pub outcome: AttemptOutcome,
    /// The triggering error, rendered, when the outcome is a failure.
    pub error: Option<String>,
}

/// The recovery story of one derivation, attached to
/// [`ExecReport::recovery`](crate::ExecReport) on success and to
/// [`EngineError::Exhausted`] on failure.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RecoveryReport {
    /// Every attempt, retry, skip, and fallback, in order.
    pub attempts: Vec<AttemptRecord>,
    /// Transient-fault retries performed.
    pub retries: u32,
    /// Fallback transitions taken.
    pub fallbacks: u32,
    /// Total virtual seconds spent backing off.
    pub backoff_seconds: f64,
    /// Tainted buffers (detected integrity violations) invalidated so a
    /// retry re-uploads or re-derives clean data.
    pub integrity_healed: u64,
    /// The level that finally produced the output (`None` on failure).
    pub completed: Option<ExecLevel>,
    /// Whether the run completed on a *different* level than requested —
    /// the output is still exact, but the performance envelope is not the
    /// one asked for.
    pub degraded: bool,
}

impl RecoveryReport {
    /// Whether recovery actually did anything (retried, fell back, or
    /// skipped a candidate) — a clean first-attempt success reports `None`
    /// rather than an empty record.
    fn engaged(&self) -> bool {
        self.retries > 0
            || self.fallbacks > 0
            || self.integrity_healed > 0
            || self.attempts.len() > 1
    }

    /// Fold another report into this one — used by callers that aggregate
    /// several derivations into a single attempt log, e.g. a distributed
    /// rank merging its per-block reports. Attempt records are appended in
    /// order, counters are summed, `degraded` is sticky, and `completed`
    /// takes the other report's level (the most recent completion).
    pub fn absorb(&mut self, other: &RecoveryReport) {
        self.attempts.extend(other.attempts.iter().cloned());
        self.retries += other.retries;
        self.fallbacks += other.fallbacks;
        self.backoff_seconds += other.backoff_seconds;
        self.integrity_healed += other.integrity_healed;
        if other.completed.is_some() {
            self.completed = other.completed;
        }
        self.degraded |= other.degraded;
    }
}

/// What the caller asked for, before any fallback.
pub(crate) enum Request {
    /// One of the paper's single-pass strategies.
    Strategy(Strategy),
    /// Streamed fusion under an explicit device budget.
    Streamed {
        /// Peak-device-memory bound for slab sizing.
        budget: u64,
    },
}

impl Request {
    fn level(&self) -> ExecLevel {
        match self {
            Request::Strategy(Strategy::Fusion) => ExecLevel::Fusion,
            Request::Strategy(Strategy::Staged) => ExecLevel::Staged,
            Request::Strategy(Strategy::Roundtrip) => ExecLevel::Roundtrip,
            Request::Streamed { .. } => ExecLevel::Streamed,
        }
    }
}

/// Engine state the driver needs, split out so the session (which holds
/// `&mut Engine`) can call it alongside its own context and state.
pub(crate) struct RecoveryCtx<'a> {
    pub options: &'a EngineOptions,
    pub tracer: Option<Tracer>,
    pub device: &'a DeviceProfile,
}

/// The successful result of a recovered (or clean) execution.
pub(crate) struct LevelOutcome {
    pub fields_out: Option<Vec<Field>>,
    pub generated_source: Option<String>,
    /// Populated iff recovery engaged (at least one retry/fallback/skip).
    pub recovery: Option<RecoveryReport>,
    /// When the run completed on the CPU fallback context, that context's
    /// profile and final clock (the primary context never executed the
    /// winning attempt).
    pub alt_profile: Option<(ProfileReport, f64)>,
}

/// Build the ladder: the requested level first, then (when fallback is on)
/// the remaining chain Fusion → Staged → Streamed → Roundtrip → CPU
/// fusion. Streamed only computes the network's natural result, so it is
/// dropped for multi-output requests; the CPU rung is dropped when the
/// engine already targets a CPU profile.
fn ladder(
    requested: ExecLevel,
    policy: &RecoveryPolicy,
    multi: bool,
    device: &DeviceProfile,
) -> Vec<ExecLevel> {
    let mut levels = vec![requested];
    if policy.fallback {
        for level in [
            ExecLevel::Fusion,
            ExecLevel::Staged,
            ExecLevel::Streamed,
            ExecLevel::Roundtrip,
            ExecLevel::CpuFusion,
        ] {
            if level == requested {
                continue;
            }
            if level == ExecLevel::Streamed && multi {
                continue;
            }
            if level == ExecLevel::CpuFusion && device.kind == DeviceKind::Cpu {
                continue;
            }
            levels.push(level);
        }
    }
    levels
}

/// What one attempt returns: the output fields (absent in model mode), the
/// generated fused source when the level produced one, and the stream
/// report (slabs, depth, absorbed in-pipeline retries) for streamed runs.
type AttemptOutput = (Option<Vec<Field>>, Option<String>, Option<StreamReport>);

/// Execute one level on the given context. Session state flows through for
/// device levels; the CPU fallback always runs one-shot (its buffers live
/// on a different context than the session's residents).
#[allow(clippy::too_many_arguments)]
fn execute_level(
    level: ExecLevel,
    rc: &RecoveryCtx<'_>,
    spec: &NetworkSpec,
    sched: &Schedule,
    fields: &FieldSet,
    roots: &[NodeId],
    label: &str,
    streamed_budget: u64,
    ctx: &mut Context,
    session: Option<&mut SessionState>,
) -> Result<AttemptOutput, EngineError> {
    match level {
        ExecLevel::Roundtrip => run_roundtrip_multi_session(
            spec,
            sched,
            fields,
            ctx,
            rc.options.roundtrip_dedup_uploads,
            roots,
            session,
        )
        .map(|f| (f, None, None)),
        ExecLevel::Staged => {
            let out = if rc.options.branch_parallel {
                run_staged_levels_session(spec, sched, fields, ctx, roots, session)?
            } else {
                run_staged_multi_session(spec, sched, fields, ctx, roots, session)?
            };
            Ok((out, None, None))
        }
        ExecLevel::Fusion | ExecLevel::CpuFusion => {
            run_fusion_multi_session(spec, roots, fields, ctx, label, session)
                .map(|(f, src)| (f, Some(src), None))
        }
        ExecLevel::Streamed => {
            // The streamed rung inherits the pipeline overlap and absorbs
            // transient faults *inside* the pipeline: the faulted queue
            // backs off and re-issues without draining the other queues.
            let policy = rc.options.recovery;
            let retry = (policy.max_retries > 0).then_some(StreamRetry {
                max_retries: policy.max_retries,
                backoff_seconds: policy.backoff_us as f64 * 1e-6,
            });
            run_streamed_fusion_session(
                spec,
                fields,
                ctx,
                label,
                streamed_budget,
                rc.options.stream,
                retry,
                session,
            )
            .map(|(f, src, report)| (f.map(|x| vec![x]), Some(src), Some(report)))
        }
    }
}

/// Snapshot the session's resident bindings so entries created by a failed
/// attempt can be pruned after rollback.
fn resident_snapshot(
    session: &Option<&mut SessionState>,
) -> Option<std::collections::HashMap<String, dfg_ocl::BufferId>> {
    session
        .as_ref()
        .map(|s| s.resident.iter().map(|(k, r)| (k.clone(), r.buf)).collect())
}

/// Cancellation point: surface [`EngineError::Cancelled`] when the
/// session's token (if any) has fired. Checked between ladder rungs and
/// between retries, so an orphaned or expired request stops at the next
/// attempt boundary instead of walking the whole ladder.
fn check_cancel(session: &Option<&mut SessionState>) -> Result<(), EngineError> {
    if let Some(tok) = session.as_ref().and_then(|s| s.cancel.as_ref()) {
        tok.check()?;
    }
    Ok(())
}

/// Roll the context back to `mark` and drop session-resident entries whose
/// buffers no longer exist (created — or replaced — during the failed
/// attempt).
fn restore(
    ctx: &mut Context,
    mark: &dfg_ocl::AllocMark,
    session: &mut Option<&mut SessionState>,
    snapshot: &Option<std::collections::HashMap<String, dfg_ocl::BufferId>>,
) {
    ctx.rollback(mark);
    if let (Some(state), Some(snap)) = (session.as_deref_mut(), snapshot) {
        state
            .resident
            .retain(|name, r| snap.get(name) == Some(&r.buf));
    }
}

/// The recovery driver: run the requested plan, retrying transient faults
/// with virtual-clock backoff and walking the fallback ladder on
/// persistent ones. Non-environmental errors (missing fields, schedule
/// bugs) on the requested level propagate untouched.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_with_recovery(
    rc: RecoveryCtx<'_>,
    spec: &NetworkSpec,
    sched: &Schedule,
    fields: &FieldSet,
    roots: &[NodeId],
    requested: Request,
    ctx: &mut Context,
    mut session: Option<&mut SessionState>,
) -> Result<LevelOutcome, EngineError> {
    let policy = rc.options.recovery;
    let multi = !(roots.len() == 1 && roots[0] == spec.result);
    let levels = ladder(requested.level(), &policy, multi, rc.device);
    let streamed_budget = match requested {
        Request::Streamed { budget } => budget,
        _ => rc.device.global_mem_bytes,
    };
    let label = if roots.len() == 1 {
        spec.node(roots[0])
            .name
            .clone()
            .unwrap_or_else(|| "expr".to_string())
    } else {
        "multi".to_string()
    };
    let ncells = fields.ncells() as u64;
    let cpu_profile = DeviceProfile::intel_x5660();

    let mut report = RecoveryReport::default();
    let mut last_err: Option<EngineError> = None;
    let mut cpu_ctx: Option<Context> = None;

    for (li, &level) in levels.iter().enumerate() {
        let is_requested = li == 0;
        let capacity = if level == ExecLevel::CpuFusion {
            cpu_profile.global_mem_bytes
        } else {
            rc.device.global_mem_bytes
        };
        if !is_requested {
            // Re-plan before attempting: skip candidates the exact memory
            // model already rules out.
            if let Some(strategy) = level.planned_strategy() {
                let required = memreq_units(spec, strategy)?.bytes(ncells);
                if required > capacity {
                    report.attempts.push(AttemptRecord {
                        level,
                        outcome: AttemptOutcome::Skipped {
                            required_bytes: required,
                            capacity_bytes: capacity,
                        },
                        error: None,
                    });
                    continue;
                }
            }
            report.fallbacks += 1;
            drop(
                span!(rc.tracer, "recover.fallback", to = level.name())
                    .meta("from", levels[li - 1].name())
                    .meta(
                        "error",
                        last_err.as_ref().map(|e| e.to_string()).unwrap_or_default(),
                    ),
            );
        }

        // The CPU rung runs on its own context (different profile); it
        // inherits the tracer and — deliberately — the same fault plan.
        let exec_ctx: &mut Context = if level == ExecLevel::CpuFusion {
            cpu_ctx.get_or_insert_with(|| {
                let mut c = Context::new(cpu_profile.clone(), ctx.mode());
                if let Some(t) = &rc.tracer {
                    c.set_tracer(t.clone());
                }
                if let Some(plan) = ctx.fault_plan() {
                    c.set_fault_plan(plan.clone());
                }
                c.set_verify(ctx.verify_policy());
                c
            })
        } else {
            &mut *ctx
        };

        let mut backoff = policy.backoff_us as f64 * 1e-6;
        let mut retries_left = policy.max_retries;
        loop {
            // Cancellation point: a fired token aborts before the next
            // attempt. Raw (unwrapped) so callers see `Cancelled`, not
            // `Exhausted` — nothing about the workload failed.
            check_cancel(&session)?;
            let mark = exec_ctx.alloc_mark();
            let snap = if level == ExecLevel::CpuFusion {
                None
            } else {
                resident_snapshot(&session)
            };
            let exec_span = span!(
                rc.tracer,
                &format!("execute.{}", level.name()),
                ncells = fields.ncells(),
            );
            exec_span.virt_start(exec_ctx.clock_seconds());
            let attempt_session = if level == ExecLevel::CpuFusion {
                None
            } else {
                session.as_deref_mut()
            };
            let result = execute_level(
                level,
                &rc,
                spec,
                sched,
                fields,
                roots,
                &label,
                streamed_budget,
                exec_ctx,
                attempt_session,
            );
            exec_span.virt_end(exec_ctx.clock_seconds());
            match result {
                Ok((fields_out, generated_source, stream)) => {
                    match stream {
                        Some(s) => {
                            // Transient faults the pipeline absorbed in
                            // flight count as retries of this level — they
                            // just never drained the pipeline.
                            if s.in_pipeline_retries > 0 {
                                report.retries += s.in_pipeline_retries;
                                report.backoff_seconds += s.backoff_seconds;
                                report.attempts.push(AttemptRecord {
                                    level,
                                    outcome: AttemptOutcome::Retried {
                                        backoff_seconds: s.backoff_seconds,
                                    },
                                    error: Some(format!(
                                        "{} transient fault(s) absorbed in-pipeline",
                                        s.in_pipeline_retries
                                    )),
                                });
                            }
                            drop(exec_span.meta("slabs", s.slabs).meta("depth", s.depth));
                        }
                        None => drop(exec_span),
                    }
                    report.completed = Some(level);
                    report.degraded = !is_requested;
                    report.attempts.push(AttemptRecord {
                        level,
                        outcome: AttemptOutcome::Succeeded,
                        error: None,
                    });
                    let alt_profile = (level == ExecLevel::CpuFusion).then(|| {
                        let c = cpu_ctx.as_ref().expect("cpu level ran on cpu_ctx");
                        (c.report(), c.clock_seconds())
                    });
                    let recovery = report.engaged().then_some(report);
                    return Ok(LevelOutcome {
                        fields_out,
                        generated_source,
                        recovery,
                        alt_profile,
                    });
                }
                Err(e) => {
                    drop(exec_span);
                    if level == ExecLevel::CpuFusion {
                        exec_ctx.rollback(&mark);
                    } else {
                        restore(exec_ctx, &mark, &mut session, &snap);
                    }
                    // A detected integrity violation names one tainted
                    // buffer. If that buffer is a session resident it
                    // predates the mark, so rollback left it (and its
                    // corrupt bits) alive — a plain retry would fail the
                    // same verification forever. Invalidate it so the
                    // retry re-uploads clean data.
                    if let EngineError::Ocl(OclError::IntegrityViolation { kind, buffer, .. }) = &e
                    {
                        if let Some(state) = session.as_deref_mut() {
                            let tainted: Vec<String> = state
                                .resident
                                .iter()
                                .filter(|(_, r)| r.buf.index() == *buffer)
                                .map(|(name, _)| name.clone())
                                .collect();
                            for name in tainted {
                                if let Some(r) = state.resident.remove(&name) {
                                    let _ = exec_ctx.release(r.buf);
                                    report.integrity_healed += 1;
                                    drop(span!(
                                        rc.tracer,
                                        "recover.integrity",
                                        field = name,
                                        kind = kind.name(),
                                        healed = "invalidate",
                                    ));
                                }
                            }
                        }
                    }
                    let transient = matches!(&e, EngineError::Ocl(o) if o.is_transient());
                    let environmental = matches!(&e, EngineError::Ocl(o) if o.is_environmental());
                    if transient && retries_left > 0 {
                        report.retries += 1;
                        report.backoff_seconds += backoff;
                        report.attempts.push(AttemptRecord {
                            level,
                            outcome: AttemptOutcome::Retried {
                                backoff_seconds: backoff,
                            },
                            error: Some(e.to_string()),
                        });
                        // Backoff on the virtual clock: deterministic, and
                        // identical in model and real modes.
                        let retry_span = span!(
                            rc.tracer,
                            "recover.retry",
                            level = level.name(),
                            remaining = retries_left,
                        );
                        retry_span.virt_start(exec_ctx.clock_seconds());
                        exec_ctx.advance_clock(backoff);
                        retry_span.virt_end(exec_ctx.clock_seconds());
                        drop(retry_span.meta("error", e.to_string()));
                        backoff *= 2.0;
                        retries_left -= 1;
                        continue;
                    }
                    // Fall back on persistent (or retry-exhausted)
                    // environmental faults; once recovery is past the
                    // requested level, any failure moves the chain along
                    // (a fallback rung may be inapplicable, e.g. streamed
                    // without a `dims` field).
                    let may_fall_back = policy.fallback
                        && li + 1 < levels.len()
                        && (environmental || transient || !is_requested);
                    if may_fall_back {
                        if matches!(&e, EngineError::Ocl(OclError::OutOfMemory { .. })) {
                            // Parked pool slots must never cause the next
                            // attempt's OOM.
                            exec_ctx.trim_pool();
                        }
                        report.attempts.push(AttemptRecord {
                            level,
                            outcome: AttemptOutcome::FellBack,
                            error: Some(e.to_string()),
                        });
                        last_err = Some(e);
                        break;
                    }
                    report.attempts.push(AttemptRecord {
                        level,
                        outcome: AttemptOutcome::Exhausted,
                        error: Some(e.to_string()),
                    });
                    return Err(if report.engaged() {
                        EngineError::Exhausted {
                            recovery: Box::new(report),
                            last: Box::new(e),
                        }
                    } else {
                        e
                    });
                }
            }
        }
    }

    // Every level failed or was skipped.
    let last = last_err.expect("ladder is never empty; a failure was recorded");
    Err(if report.engaged() {
        EngineError::Exhausted {
            recovery: Box::new(report),
            last: Box::new(last),
        }
    } else {
        last
    })
}
