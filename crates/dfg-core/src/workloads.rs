//! The paper's three evaluation workloads, with their expected Table II
//! device-event counts and reference kernels.

pub use dfg_expr::workloads::{
    INTRO_CONDITIONAL, Q_CRITERION, VELOCITY_MAGNITUDE, VORTICITY_MAGNITUDE,
};

use dfg_dataflow::Strategy;
use dfg_kernels::{QCritRef, VelMagRef, VortMagRef};
use dfg_ocl::DeviceKernel;

/// One of the three vortex-detection expressions of §IV-A.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// Figure 3A: `v_mag = sqrt(u*u + v*v + w*w)`.
    VelocityMagnitude,
    /// Figure 3B: vorticity magnitude.
    VorticityMagnitude,
    /// Figure 3C: Q-criterion.
    QCriterion,
}

impl Workload {
    /// All three, in the paper's order.
    pub const ALL: [Workload; 3] = [
        Workload::VelocityMagnitude,
        Workload::VorticityMagnitude,
        Workload::QCriterion,
    ];

    /// The expression source text (Figure 3).
    pub fn source(&self) -> &'static str {
        match self {
            Workload::VelocityMagnitude => VELOCITY_MAGNITUDE,
            Workload::VorticityMagnitude => VORTICITY_MAGNITUDE,
            Workload::QCriterion => Q_CRITERION,
        }
    }

    /// Table II's row label.
    pub fn table2_name(&self) -> &'static str {
        match self {
            Workload::VelocityMagnitude => "VelMag",
            Workload::VorticityMagnitude => "VortMag",
            Workload::QCriterion => "Q-Crit",
        }
    }

    /// The paper's Table II `(Dev-W, Dev-R, K-Exe)` counts for `strategy`.
    pub fn paper_table2(&self, strategy: Strategy) -> (usize, usize, usize) {
        match (self, strategy) {
            (Workload::VelocityMagnitude, Strategy::Roundtrip) => (11, 6, 6),
            (Workload::VelocityMagnitude, Strategy::Staged) => (3, 1, 6),
            (Workload::VelocityMagnitude, Strategy::Fusion) => (3, 1, 1),
            (Workload::VorticityMagnitude, Strategy::Roundtrip) => (32, 12, 12),
            (Workload::VorticityMagnitude, Strategy::Staged) => (7, 1, 18),
            (Workload::VorticityMagnitude, Strategy::Fusion) => (7, 1, 1),
            (Workload::QCriterion, Strategy::Roundtrip) => (123, 57, 57),
            (Workload::QCriterion, Strategy::Staged) => (7, 1, 67),
            (Workload::QCriterion, Strategy::Fusion) => (7, 1, 1),
        }
    }

    /// Input field names the hand-written reference kernel binds, in order.
    pub fn reference_input_names(&self) -> &'static [&'static str] {
        match self {
            Workload::VelocityMagnitude => &["u", "v", "w"],
            Workload::VorticityMagnitude | Workload::QCriterion => {
                &["u", "v", "w", "dims", "x", "y", "z"]
            }
        }
    }

    /// Instantiate the reference kernel (§IV-D.1's comparator).
    pub fn reference_kernel(&self) -> Box<dyn DeviceKernel> {
        match self {
            Workload::VelocityMagnitude => Box::new(VelMagRef),
            Workload::VorticityMagnitude => Box::new(VortMagRef),
            Workload::QCriterion => Box::new(QCritRef),
        }
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.table2_name())
    }
}
