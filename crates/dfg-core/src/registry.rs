//! Multi-tenant session registry: one engine per tenant, one shared clock.
//!
//! A serving process (see the `dfg-serve` crate) keeps many concurrent
//! callers' state alive at once. The [`SessionRegistry`] is the dfg-core
//! piece of that story: it maps tenant ids to owned [`Session`]s (created
//! lazily on first use), clamps each tenant's device allocation through a
//! per-tenant memory quota, and guarantees that a failed request cannot
//! leak device memory into a tenant's long-lived session.
//!
//! **Quotas** reuse the existing pool accounting wholesale: a tenant's
//! engine is built from a copy of the registry's [`DeviceProfile`] whose
//! `global_mem_bytes` is lowered to the quota, so every allocation path —
//! pool hits, pool evictions, and the out-of-memory failure mode — behaves
//! exactly as it does on a small device. A quota breach surfaces as the
//! same typed [`EngineError`] the engine already produces (check it with
//! [`EngineError::is_out_of_memory`]), and when the engine's
//! [`crate::RecoveryPolicy`] is enabled the request first walks the
//! degradation ladder (staged → streamed → roundtrip → CPU) before giving
//! up, which is the serving layer's graceful-degradation story.
//!
//! **Leak safety**: each request runs inside an allocation guard. On any
//! error the registry rolls the tenant's context back to the pre-request
//! allocation mark and prunes resident-field entries whose buffers were
//! rolled back, so `in_use_bytes` returns to its pre-request baseline and
//! the next request starts clean.
//!
//! ```
//! use dfg_core::{EngineOptions, SessionRegistry, Strategy, FieldSet};
//! use dfg_ocl::DeviceProfile;
//!
//! let mut reg = SessionRegistry::new(DeviceProfile::intel_x5660(), EngineOptions::default());
//! let mut fields = FieldSet::new(8);
//! fields.insert_scalar("u", vec![2.0; 8]).unwrap();
//!
//! // Two tenants, isolated sessions, both served from one registry.
//! for tenant in ["alice", "bob"] {
//!     let report = reg
//!         .derive(tenant, "m = u*u", &fields, Strategy::Fusion)
//!         .unwrap();
//!     assert!(report.field.is_some());
//! }
//! assert_eq!(reg.len(), 2);
//! let stats = reg.stats("alice").unwrap();
//! assert_eq!(stats.session.cycles, 1);
//! ```

use std::collections::HashMap;
use std::time::{Duration, Instant};

use dfg_ocl::DeviceProfile;
use dfg_trace::Tracer;

use crate::cancel::CancelToken;
use crate::engine::{Engine, EngineOptions, ExecReport};
use crate::error::EngineError;
use crate::fields::FieldSet;
use crate::session::{Session, SessionStats};
use crate::Strategy;

/// One tenant's long-lived state inside the registry.
struct Tenant {
    session: Session,
    quota_bytes: u64,
    /// When the tenant last started a request (or was created) — the clock
    /// idle-TTL eviction and LRU pressure eviction run against.
    last_used: Instant,
}

/// A point-in-time snapshot of one tenant's counters, suitable for a
/// serving stats endpoint. Pool and kernel-cache counters are broken out
/// *per tenant* (each tenant owns its context), so quota accounting is
/// observable from the outside.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantStats {
    /// Tenant id this snapshot describes.
    pub tenant: String,
    /// Session counters: cycles, uploads (skipped), codegen compiles/hits.
    pub session: SessionStats,
    /// Allocations served by this tenant's buffer pool.
    pub pool_hits: u64,
    /// Bytes parked in this tenant's pool awaiting reuse.
    pub pooled_bytes: u64,
    /// Bytes held by this tenant's device-resident input fields.
    pub resident_bytes: u64,
    /// Total live device bytes for this tenant (resident + transient).
    pub in_use_bytes: u64,
    /// The tenant's device-memory quota in bytes.
    pub quota_bytes: u64,
    /// Integrity verifications this tenant's context has performed (zero
    /// unless the engine runs with a [`dfg_ocl::VerifyPolicy`] above `Off`).
    pub integrity_checks: u64,
    /// Integrity violations detected in this tenant's buffers (each one
    /// surfaced as a typed error and healed by re-upload or retry).
    pub integrity_violations: u64,
    /// Milliseconds since the tenant last started a request — the value
    /// idle-TTL eviction compares against its threshold.
    pub idle_ms: u64,
}

/// Owns per-tenant [`Session`]s keyed by tenant id; see the module-level
/// documentation above for the quota and leak-safety contract.
pub struct SessionRegistry {
    profile: DeviceProfile,
    options: EngineOptions,
    tracer: Option<Tracer>,
    default_quota: Option<u64>,
    quotas: HashMap<String, u64>,
    tenants: HashMap<String, Tenant>,
}

impl SessionRegistry {
    /// A registry serving sessions on `profile` with `options`. Tenants
    /// are created lazily on their first request.
    pub fn new(profile: DeviceProfile, options: EngineOptions) -> Self {
        SessionRegistry {
            profile,
            options,
            tracer: None,
            default_quota: None,
            quotas: HashMap::new(),
            tenants: HashMap::new(),
        }
    }

    /// Attach a tracer; sessions created after this call emit spans into
    /// it (`upload.skipped`, `codegen.cached`, strategy spans, …).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = Some(tracer);
    }

    /// Default per-tenant quota in bytes for tenants without an explicit
    /// [`SessionRegistry::set_quota`]. `None` (the initial state) means
    /// the device's full capacity.
    pub fn set_default_quota(&mut self, bytes: Option<u64>) {
        self.default_quota = bytes;
    }

    /// Set `tenant`'s device-memory quota. Takes effect when the tenant's
    /// session is created — set quotas before the tenant's first request
    /// (or after [`SessionRegistry::end_tenant`]); an already-live session
    /// keeps the quota it was created with.
    pub fn set_quota(&mut self, tenant: &str, bytes: u64) {
        self.quotas.insert(tenant.to_string(), bytes);
    }

    /// The quota that applies to `tenant` right now (explicit, default, or
    /// full device capacity).
    pub fn quota_of(&self, tenant: &str) -> u64 {
        if let Some(t) = self.tenants.get(tenant) {
            return t.quota_bytes;
        }
        self.quotas
            .get(tenant)
            .copied()
            .or(self.default_quota)
            .unwrap_or(self.profile.global_mem_bytes)
            .min(self.profile.global_mem_bytes)
    }

    fn entry(&mut self, tenant: &str) -> &mut Tenant {
        if !self.tenants.contains_key(tenant) {
            let quota_bytes = self.quota_of(tenant);
            let mut profile = self.profile.clone();
            profile.global_mem_bytes = quota_bytes;
            let mut engine = Engine::with_options(profile, self.options);
            if let Some(tracer) = &self.tracer {
                engine.set_tracer(tracer.clone());
            }
            self.tenants.insert(
                tenant.to_string(),
                Tenant {
                    session: engine.into_session(),
                    quota_bytes,
                    last_used: Instant::now(),
                },
            );
        }
        let entry = self.tenants.get_mut(tenant).expect("just inserted");
        entry.last_used = Instant::now();
        entry
    }

    /// Run `f` against `tenant`'s session inside an allocation guard: on
    /// error the context is rolled back to the pre-request mark and
    /// resident entries for rolled-back buffers are pruned, so a failed
    /// request cannot leak device bytes into the long-lived session.
    fn guarded<R>(
        &mut self,
        tenant: &str,
        f: impl FnOnce(&mut Session) -> Result<R, EngineError>,
    ) -> Result<R, EngineError> {
        let entry = self.entry(tenant);
        let mark = entry.session.ctx.alloc_mark();
        match f(&mut entry.session) {
            Ok(r) => Ok(r),
            Err(e) => {
                entry.session.ctx.rollback(&mark);
                entry
                    .session
                    .state
                    .resident
                    .retain(|_, r| mark.contains(r.buf));
                Err(e)
            }
        }
    }

    /// Derive one field for `tenant`; same contract as [`Session::derive`]
    /// with the registry's quota and leak guard applied.
    pub fn derive(
        &mut self,
        tenant: &str,
        source: &str,
        fields: &FieldSet,
        strategy: Strategy,
    ) -> Result<ExecReport, EngineError> {
        self.guarded(tenant, |s| s.derive(source, fields, strategy))
    }

    /// Derive several named outputs for `tenant` in one execution; see
    /// [`Session::derive_many`].
    pub fn derive_many(
        &mut self,
        tenant: &str,
        source: &str,
        outputs: &[&str],
        fields: &FieldSet,
        strategy: Strategy,
    ) -> Result<(Vec<(String, crate::Field)>, ExecReport), EngineError> {
        self.guarded(tenant, |s| s.derive_many(source, outputs, fields, strategy))
    }

    /// Execute an already-lowered, explicitly rooted network for `tenant`;
    /// see [`Session::derive_network`]. `dfg-serve` uses this to run one
    /// merged multi-tenant network (see `dfg_dataflow::merge_networks`) and
    /// fan its outputs back out per request.
    pub fn derive_network(
        &mut self,
        tenant: &str,
        spec: &dfg_dataflow::NetworkSpec,
        roots: &[dfg_dataflow::NodeId],
        fields: &FieldSet,
        strategy: Strategy,
    ) -> Result<(Vec<crate::Field>, ExecReport), EngineError> {
        self.guarded(tenant, |s| s.derive_network(spec, roots, fields, strategy))
    }

    /// Record that `tenant`'s latest request was served by a merged
    /// cross-request network (bumps [`SessionStats::merged`], creating the
    /// tenant's session if needed).
    pub fn note_merged(&mut self, tenant: &str) {
        self.entry(tenant).session.state.stats.merged += 1;
    }

    /// Record kernel launches the optimizer saved for `tenant`'s latest
    /// request (bumps [`SessionStats::opt_saved_kernels`]). Used by serving
    /// layers that optimize/merge networks outside the tenant's engine.
    pub fn note_opt_saved(&mut self, tenant: &str, kernels: u64) {
        self.entry(tenant).session.state.stats.opt_saved_kernels += kernels;
    }

    /// Streamed (slab-partitioned) derivation for `tenant`; see
    /// [`Session::derive_streamed`].
    pub fn derive_streamed(
        &mut self,
        tenant: &str,
        source: &str,
        fields: &FieldSet,
        device_budget_bytes: Option<u64>,
    ) -> Result<ExecReport, EngineError> {
        self.guarded(tenant, |s| {
            s.derive_streamed(source, fields, device_budget_bytes)
        })
    }

    /// Install (or clear, with `None`) the cancellation token polled during
    /// `tenant`'s derivations; see [`Session::set_cancel`]. Creates the
    /// tenant's session if needed (a request about to run is a use).
    pub fn set_cancel(&mut self, tenant: &str, token: Option<CancelToken>) {
        self.entry(tenant).session.set_cancel(token);
    }

    /// Counters for `tenant`, or `None` if it has never made a request.
    pub fn stats(&self, tenant: &str) -> Option<TenantStats> {
        self.tenants.get(tenant).map(|t| {
            let integrity = t.session.context().integrity_stats();
            TenantStats {
                tenant: tenant.to_string(),
                session: t.session.stats().clone(),
                pool_hits: t.session.pool_hits(),
                pooled_bytes: t.session.pooled_bytes(),
                resident_bytes: t.session.resident_bytes(),
                in_use_bytes: t.session.context().in_use_bytes(),
                quota_bytes: t.quota_bytes,
                integrity_checks: integrity.checks,
                integrity_violations: integrity.violations,
                idle_ms: t.last_used.elapsed().as_millis() as u64,
            }
        })
    }

    /// Stats for every live tenant, sorted by tenant id.
    pub fn all_stats(&self) -> Vec<TenantStats> {
        let mut ids: Vec<&String> = self.tenants.keys().collect();
        ids.sort();
        ids.into_iter()
            .map(|id| self.stats(id).expect("live tenant"))
            .collect()
    }

    /// Ids of every live tenant, sorted.
    pub fn tenant_ids(&self) -> Vec<String> {
        let mut ids: Vec<String> = self.tenants.keys().cloned().collect();
        ids.sort();
        ids
    }

    /// Close `tenant`'s session, releasing its resident buffers, and
    /// return its final counters (`None` if the tenant never existed).
    pub fn end_tenant(&mut self, tenant: &str) -> Option<SessionStats> {
        self.tenants.remove(tenant).map(|t| t.session.end())
    }

    /// How long `tenant` has been idle (time since its last request), or
    /// `None` if it has no live session.
    pub fn idle_for(&self, tenant: &str) -> Option<Duration> {
        self.tenants.get(tenant).map(|t| t.last_used.elapsed())
    }

    /// Evict every tenant idle for at least `ttl`: close their sessions
    /// (releasing all device memory) and return the evicted ids, sorted.
    /// The serving layer's maintenance tick calls this so weeks-long uptime
    /// does not accumulate sessions for tenants that left.
    pub fn evict_idle(&mut self, ttl: Duration) -> Vec<String> {
        let mut expired: Vec<String> = self
            .tenants
            .iter()
            .filter(|(_, t)| t.last_used.elapsed() >= ttl)
            .map(|(id, _)| id.clone())
            .collect();
        expired.sort();
        for id in &expired {
            if let Some(t) = self.tenants.remove(id) {
                t.session.end();
            }
        }
        expired
    }

    /// Evict the least-recently-used tenant (ties broken by smaller tenant
    /// id, so eviction order is deterministic) and return its id, or `None`
    /// if the registry is empty. The memory-pressure watchdog calls this
    /// after pool trimming when device bytes are still over the threshold.
    pub fn evict_lru(&mut self) -> Option<String> {
        let victim = self
            .tenants
            .iter()
            .min_by(|(ida, a), (idb, b)| a.last_used.cmp(&b.last_used).then(ida.cmp(idb)))
            .map(|(id, _)| id.clone())?;
        if let Some(t) = self.tenants.remove(&victim) {
            t.session.end();
        }
        Some(victim)
    }

    /// Return every tenant's pool-parked bytes to the allocator (see
    /// [`dfg_ocl::Context::trim_pool`]); returns the total bytes freed.
    /// The cheap first rung of the memory-pressure watchdog — resident
    /// fields and kernel caches survive, so amortization is untouched.
    pub fn trim_pools(&mut self) -> u64 {
        self.tenants
            .values_mut()
            .map(|t| t.session.ctx.trim_pool())
            .sum()
    }

    /// Live device bytes across all tenants (resident + transient).
    pub fn total_in_use_bytes(&self) -> u64 {
        self.tenants
            .values()
            .map(|t| t.session.context().in_use_bytes())
            .sum()
    }

    /// Pool-parked bytes across all tenants (allocated but reusable).
    pub fn total_pooled_bytes(&self) -> u64 {
        self.tenants
            .values()
            .map(|t| t.session.pooled_bytes())
            .sum()
    }

    /// Number of live tenants.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// Whether no tenant has made a request yet.
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RecoveryPolicy;

    fn fields(n: usize) -> FieldSet {
        let mut f = FieldSet::new(n);
        f.insert_scalar("u", (0..n).map(|i| i as f32 * 0.5).collect())
            .unwrap();
        f.insert_scalar("v", (0..n).map(|i| 1.0 + i as f32).collect())
            .unwrap();
        f
    }

    #[test]
    fn owned_session_matches_borrowed_session() {
        let fields = fields(64);
        let src = "m = sqrt(u*u + v*v)";
        let mut engine = Engine::new(DeviceProfile::intel_x5660());
        let mut borrowed = engine.session();
        let want = borrowed.derive(src, &fields, Strategy::Fusion).unwrap();
        let mut owned = Engine::new(DeviceProfile::intel_x5660()).into_session();
        let got = owned.derive(src, &fields, Strategy::Fusion).unwrap();
        assert_eq!(
            want.field.as_ref().unwrap().as_scalar().unwrap(),
            got.field.as_ref().unwrap().as_scalar().unwrap()
        );
    }

    #[test]
    fn tenants_are_isolated_and_both_amortize() {
        let fields = fields(64);
        let src = "m = u*v";
        let mut reg = SessionRegistry::new(DeviceProfile::intel_x5660(), EngineOptions::default());
        for _ in 0..3 {
            reg.derive("a", src, &fields, Strategy::Fusion).unwrap();
            reg.derive("b", src, &fields, Strategy::Fusion).unwrap();
        }
        for id in ["a", "b"] {
            let st = reg.stats(id).unwrap();
            assert_eq!(st.session.cycles, 3);
            assert_eq!(st.session.codegen_compiles, 1, "compiled once per tenant");
            assert_eq!(st.session.codegen_cached, 2);
            assert!(st.session.uploads_skipped > 0);
        }
        assert_eq!(reg.tenant_ids(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn quota_breach_is_typed_and_leak_free() {
        let n = 32 * 32 * 32;
        let fields = fields(n);
        let opts = EngineOptions {
            recovery: RecoveryPolicy::disabled(),
            ..EngineOptions::default()
        };
        let mut reg = SessionRegistry::new(DeviceProfile::intel_x5660(), opts);
        reg.set_quota("tiny", 16 * 1024);
        let err = reg
            .derive("tiny", "m = u*v + u", &fields, Strategy::Fusion)
            .unwrap_err();
        assert!(err.is_out_of_memory(), "expected OOM, got {err}");
        let st = reg.stats("tiny").unwrap();
        assert_eq!(st.in_use_bytes, 0, "failed request leaked device bytes");
        assert_eq!(st.quota_bytes, 16 * 1024);
        // A request that fits still succeeds afterwards.
        let small = fields_of(8);
        reg.derive("tiny", "m = u+v", &small, Strategy::Fusion)
            .unwrap();
    }

    fn fields_of(n: usize) -> FieldSet {
        fields(n)
    }

    #[test]
    fn quota_breach_degrades_with_recovery_enabled() {
        let n = 32 * 32 * 32;
        let fields = fields(n);
        let opts = EngineOptions {
            recovery: RecoveryPolicy::resilient(),
            ..EngineOptions::default()
        };
        let mut reg = SessionRegistry::new(DeviceProfile::intel_x5660(), opts);
        reg.set_quota("t", 16 * 1024);
        let report = reg
            .derive("t", "m = u*v + u", &fields, Strategy::Fusion)
            .unwrap();
        let rec = report.recovery.as_ref().expect("recovery record");
        assert!(rec.degraded, "expected a degraded completion under quota");
    }

    #[test]
    fn idle_eviction_releases_sessions_and_bytes() {
        let fields = fields(64);
        let mut reg = SessionRegistry::new(DeviceProfile::intel_x5660(), EngineOptions::default());
        reg.derive("a", "m = u*v", &fields, Strategy::Fusion)
            .unwrap();
        reg.derive("b", "m = u+v", &fields, Strategy::Fusion)
            .unwrap();
        assert_eq!(reg.len(), 2);
        // Nothing is idle long enough for a 1-hour TTL.
        assert!(reg.evict_idle(Duration::from_secs(3600)).is_empty());
        assert_eq!(reg.len(), 2);
        // A zero TTL evicts everyone, deterministically sorted.
        assert_eq!(reg.evict_idle(Duration::ZERO), vec!["a", "b"]);
        assert!(reg.is_empty());
        assert_eq!(reg.total_in_use_bytes(), 0);
        assert_eq!(reg.total_pooled_bytes(), 0);
        // Evicted tenants come back lazily on their next request.
        reg.derive("a", "m = u*v", &fields, Strategy::Fusion)
            .unwrap();
        assert_eq!(reg.stats("a").unwrap().session.cycles, 1);
    }

    #[test]
    fn lru_eviction_picks_the_stalest_tenant() {
        let fields = fields(64);
        let mut reg = SessionRegistry::new(DeviceProfile::intel_x5660(), EngineOptions::default());
        reg.derive("old", "m = u*v", &fields, Strategy::Fusion)
            .unwrap();
        std::thread::sleep(Duration::from_millis(5));
        reg.derive("new", "m = u+v", &fields, Strategy::Fusion)
            .unwrap();
        assert_eq!(reg.evict_lru().as_deref(), Some("old"));
        assert_eq!(reg.tenant_ids(), vec!["new".to_string()]);
        assert_eq!(reg.evict_lru().as_deref(), Some("new"));
        assert_eq!(reg.evict_lru(), None);
    }

    #[test]
    fn trim_pools_frees_parked_bytes_across_tenants() {
        let fields = fields(64);
        let mut reg = SessionRegistry::new(DeviceProfile::intel_x5660(), EngineOptions::default());
        // Transient output buffers are parked in the pool after each cycle.
        reg.derive("a", "m = u*v", &fields, Strategy::Fusion)
            .unwrap();
        reg.derive("b", "m = u+v", &fields, Strategy::Fusion)
            .unwrap();
        assert!(reg.total_pooled_bytes() > 0, "expected parked pool bytes");
        let freed = reg.trim_pools();
        assert!(freed > 0);
        assert_eq!(reg.total_pooled_bytes(), 0);
        // Sessions survive trimming; the next request still amortizes.
        reg.derive("a", "m = u*v", &fields, Strategy::Fusion)
            .unwrap();
        assert_eq!(reg.stats("a").unwrap().session.codegen_cached, 1);
    }

    #[test]
    fn fired_cancel_token_aborts_and_leaks_nothing() {
        let fields = fields(64);
        let mut reg = SessionRegistry::new(DeviceProfile::intel_x5660(), EngineOptions::default());
        let tok = CancelToken::new();
        tok.cancel();
        reg.set_cancel("t", Some(tok));
        let err = reg
            .derive("t", "m = u*v", &fields, Strategy::Fusion)
            .unwrap_err();
        assert!(err.is_cancelled(), "expected Cancelled, got {err}");
        assert!(!err.deadline_exceeded());
        let st = reg.stats("t").unwrap();
        assert_eq!(st.in_use_bytes, 0, "cancelled request leaked bytes");
        // Clearing the token lets the tenant run again.
        reg.set_cancel("t", None);
        reg.derive("t", "m = u*v", &fields, Strategy::Fusion)
            .unwrap();
    }

    #[test]
    fn expired_deadline_aborts_as_deadline_exceeded() {
        let fields = fields(64);
        let mut reg = SessionRegistry::new(DeviceProfile::intel_x5660(), EngineOptions::default());
        let tok = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        reg.set_cancel("t", Some(tok));
        let err = reg
            .derive("t", "m = u*v", &fields, Strategy::Fusion)
            .unwrap_err();
        assert!(err.is_cancelled());
        assert!(err.deadline_exceeded());
    }
}
