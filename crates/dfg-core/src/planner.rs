//! Automatic strategy/device selection.
//!
//! §V-D of the paper: *"This result highlights the benefit of being able to
//! select from multiple execution strategies and target devices with
//! different hardware architectures."* The paper leaves the selection to
//! the user; this module automates it: given a network, a grid size and a
//! set of candidate devices, [`plan`] predicts each feasible combination's
//! device memory (via `dfg_dataflow::memreq`, which the executors match
//! byte-for-byte) and modeled runtime (via a dry model-mode run), and ranks
//! them.

use dfg_dataflow::{memreq_units, NetworkSpec, OptLevel, Strategy};
use dfg_ocl::{DeviceProfile, ExecMode};
use dfg_trace::{span, Tracer};

use crate::engine::{Engine, EngineOptions};
use crate::error::EngineError;
use crate::fields::FieldSet;

/// One feasible (device, strategy) choice with its predicted cost.
#[derive(Debug, Clone)]
pub struct PlanOption {
    /// Candidate device (index into the `devices` slice passed to [`plan`]).
    pub device_index: usize,
    /// Device name, for reports.
    pub device_name: String,
    /// Execution strategy.
    pub strategy: Strategy,
    /// Whether this option streams z-slabs (the §VI streaming strategy);
    /// only offered when no single-pass strategy fits the device.
    pub streamed: bool,
    /// Predicted peak device memory in bytes.
    pub peak_bytes: u64,
    /// Predicted device runtime in seconds (transfers + kernels).
    pub seconds: f64,
}

/// The ranked outcome of planning.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Feasible options, fastest first.
    pub feasible: Vec<PlanOption>,
    /// Options rejected for exceeding device memory: `(device_index,
    /// strategy, required_bytes)`.
    pub rejected: Vec<(usize, Strategy, u64)>,
}

impl Plan {
    /// The fastest feasible option, if any.
    pub fn best(&self) -> Option<&PlanOption> {
        self.feasible.first()
    }
}

/// Rank all (device, strategy) combinations for executing `spec` over
/// meshes of `ncells` cells.
///
/// The runtime prediction runs the real executors in model mode against a
/// virtual field set, so it reflects the exact event stream each
/// combination would issue — not a closed-form approximation.
///
/// ```
/// use dfg_ocl::DeviceProfile;
///
/// let spec = dfg_expr::compile(dfg_core::workloads::Q_CRITERION).unwrap();
/// let devices = [DeviceProfile::intel_x5660(), DeviceProfile::nvidia_m2050()];
/// let plan = dfg_core::plan(&spec, 9_437_184, &devices).unwrap();
/// let best = plan.best().unwrap();
/// assert_eq!(best.strategy, dfg_core::Strategy::Fusion);
/// assert!(best.device_name.contains("M2050"));
/// ```
pub fn plan(
    spec: &NetworkSpec,
    ncells: u64,
    devices: &[DeviceProfile],
) -> Result<Plan, EngineError> {
    plan_traced(spec, ncells, devices, None)
}

/// [`plan`] over the *optimized* network: runs the optimizer pipeline at
/// `level` first, so memory estimates and dry runs see what an engine with
/// `EngineOptions { optimize: level, .. }` would actually execute. At
/// [`OptLevel::Off`] this is identical to [`plan`].
pub fn plan_opt(
    spec: &NetworkSpec,
    ncells: u64,
    devices: &[DeviceProfile],
    level: OptLevel,
    tracer: Option<&Tracer>,
) -> Result<Plan, EngineError> {
    let opt = dfg_dataflow::optimize_traced(spec, &[spec.result], level, tracer)?;
    plan_traced(&opt.spec, ncells, devices, tracer)
}

/// [`plan`], recording the ranking as spans: one `plan.rank` span with one
/// `plan.candidate` child per feasible (device, strategy) pair, each
/// carrying the predicted runtime and peak memory as metadata.
pub fn plan_traced(
    spec: &NetworkSpec,
    ncells: u64,
    devices: &[DeviceProfile],
    tracer: Option<&Tracer>,
) -> Result<Plan, EngineError> {
    let _rank = span!(
        tracer,
        "plan.rank",
        ncells = ncells,
        devices = devices.len()
    );
    // Virtual fields named after the network's inputs.
    let mut fields = FieldSet::new(ncells as usize);
    for (_, node) in spec.iter() {
        if let dfg_dataflow::FilterOp::Input { name, small } = &node.op {
            if *small {
                fields.insert_virtual_small(name);
            } else {
                fields.insert_virtual_scalar(name);
            }
        }
    }

    let mut feasible = Vec::new();
    let mut rejected = Vec::new();
    for (device_index, profile) in devices.iter().enumerate() {
        let mut device_has_single_pass = false;
        for strategy in Strategy::ALL {
            let required = memreq_units(spec, strategy)?.bytes(ncells);
            if required > profile.global_mem_bytes {
                rejected.push((device_index, strategy, required));
                continue;
            }
            device_has_single_pass = true;
            let mut engine = Engine::with_options(
                profile.clone(),
                EngineOptions {
                    mode: ExecMode::Model,
                    ..Default::default()
                },
            );
            let report = engine.derive_spec(spec, &fields, strategy)?;
            debug_assert_eq!(report.high_water_bytes(), required);
            drop(
                span!(tracer, "plan.candidate", strategy = strategy.name())
                    .meta("device", profile.name.as_str())
                    .meta("peak_bytes", required)
                    .meta("seconds", report.device_seconds()),
            );
            feasible.push(PlanOption {
                device_index,
                device_name: profile.name.clone(),
                strategy,
                streamed: false,
                peak_bytes: required,
                seconds: report.device_seconds(),
            });
        }
        // §VI streaming fallback: offered when nothing single-pass fits,
        // and the memory footprint (not register residency) is what blocks
        // fusion. Gradient programs need a concrete dims shape to predict
        // slab counts, which a pure (spec, ncells) plan lacks; the flat
        // elementwise estimate is exact for stencil-free programs and a
        // lower bound otherwise.
        if !device_has_single_pass {
            // Per-cell device bytes under streaming ≈ fusion's per-cell
            // footprint; slabs bound the peak at the device capacity.
            let fusion_bytes = memreq_units(spec, Strategy::Fusion)?.bytes(ncells);
            let slabs = fusion_bytes.div_ceil(profile.global_mem_bytes).max(2);
            // Model a streamed run as fusion's traffic plus halo overhead
            // per extra slab (~2 layers of every input per slab boundary —
            // small; approximate with 2 % per slab).
            let mut engine = Engine::with_options(
                DeviceProfile {
                    global_mem_bytes: u64::MAX,
                    ..profile.clone()
                },
                EngineOptions {
                    mode: ExecMode::Model,
                    ..Default::default()
                },
            );
            let report = engine.derive_spec(spec, &fields, Strategy::Fusion)?;
            drop(
                span!(tracer, "plan.candidate", strategy = "streamed")
                    .meta("device", profile.name.as_str())
                    .meta("slabs", slabs),
            );
            feasible.push(PlanOption {
                device_index,
                device_name: profile.name.clone(),
                strategy: Strategy::Fusion,
                streamed: true,
                peak_bytes: profile.global_mem_bytes,
                seconds: report.device_seconds() * (1.0 + 0.02 * slabs as f64),
            });
        }
    }
    feasible.sort_by(|a, b| a.seconds.total_cmp(&b.seconds));
    Ok(Plan { feasible, rejected })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workload;
    use dfg_expr::compile;

    fn devices() -> Vec<DeviceProfile> {
        vec![DeviceProfile::intel_x5660(), DeviceProfile::nvidia_m2050()]
    }

    #[test]
    fn small_grids_prefer_gpu_fusion() {
        let spec = compile(Workload::QCriterion.source()).unwrap();
        let plan = plan(&spec, 9_437_184, &devices()).unwrap();
        let best = plan.best().expect("feasible options exist");
        assert_eq!(best.strategy, Strategy::Fusion);
        assert_eq!(best.device_index, 1, "GPU should win when everything fits");
        assert!(plan.rejected.is_empty());
        // Ranking is sorted.
        for pair in plan.feasible.windows(2) {
            assert!(pair[0].seconds <= pair[1].seconds);
        }
    }

    #[test]
    fn staged_rejected_on_gpu_for_big_grids() {
        // The §V-D scenario: GPU staged infeasible, CPU staged still beats
        // GPU roundtrip, GPU fusion best of all.
        let spec = compile(Workload::QCriterion.source()).unwrap();
        let n = 75_497_472; // 192 x 192 x 2048
        let plan = plan(&spec, n, &devices()).unwrap();
        assert!(
            plan.rejected
                .iter()
                .any(|&(dev, st, _)| dev == 1 && st == Strategy::Staged),
            "GPU staged must be memory-rejected"
        );
        let best = plan.best().unwrap();
        assert_eq!((best.device_index, best.strategy), (1, Strategy::Fusion));
        let pos = |dev: usize, st: Strategy| {
            plan.feasible
                .iter()
                .position(|o| o.device_index == dev && o.strategy == st)
                .expect("present")
        };
        assert!(
            pos(0, Strategy::Staged) < pos(1, Strategy::Roundtrip),
            "CPU staged should outrank GPU roundtrip, as in the paper"
        );
    }

    #[test]
    fn tiny_device_falls_back_to_streaming() {
        let mut tiny = DeviceProfile::nvidia_m2050();
        tiny.global_mem_bytes = 1 << 20; // 1 MiB
        let spec = compile(Workload::VelocityMagnitude.source()).unwrap();
        let plan = plan(&spec, 1_000_000, &[tiny]).unwrap();
        // All three single-pass strategies rejected…
        assert_eq!(plan.rejected.len(), 3);
        // …but the streamed fallback is offered and respects the capacity.
        let best = plan.best().expect("streamed fallback present");
        assert!(best.streamed);
        assert_eq!(best.peak_bytes, 1 << 20);
    }

    #[test]
    fn largest_grid_gets_streamed_option_on_gpu() {
        // 192x192x3072 Q-criterion: every single-pass strategy fails on the
        // M2050 (Figure 5's gray points); planning offers streamed fusion.
        let spec = compile(Workload::QCriterion.source()).unwrap();
        let plan = plan(&spec, 113_246_208, &devices()).unwrap();
        let gpu_stream = plan
            .feasible
            .iter()
            .find(|o| o.device_index == 1 && o.streamed)
            .expect("streamed GPU option");
        // It should still beat CPU fusion (GPU bandwidth dominates the
        // small halo overhead).
        let cpu_fusion = plan
            .feasible
            .iter()
            .find(|o| o.device_index == 0 && o.strategy == Strategy::Fusion && !o.streamed)
            .expect("CPU fusion fits in 96 GB");
        assert!(gpu_stream.seconds < cpu_fusion.seconds);
    }

    #[test]
    fn plan_predictions_match_execution() {
        let spec = compile(Workload::VorticityMagnitude.source()).unwrap();
        let n = 9_437_184u64;
        let plan = plan(&spec, n, &devices()).unwrap();
        // Re-run the best option and confirm the prediction was exact.
        let best = plan.best().unwrap().clone();
        let mut engine = Engine::with_options(
            devices()[best.device_index].clone(),
            EngineOptions {
                mode: ExecMode::Model,
                ..Default::default()
            },
        );
        let fields = crate::FieldSet::virtual_rt([192, 192, 256]);
        let report = engine.derive_spec(&spec, &fields, best.strategy).unwrap();
        assert_eq!(report.high_water_bytes(), best.peak_bytes);
        assert!((report.device_seconds() - best.seconds).abs() < 1e-12);
    }
}
