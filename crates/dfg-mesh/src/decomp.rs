//! Block decomposition with ghost (halo) layers.
//!
//! The paper's distributed evaluation (§IV-D.3) decomposes the 3072³ mesh
//! into 3072 sub-grids of 192×192×256 and relies on VisIt to generate ghost
//! data: *"VisIt will duplicate and exchange a stencil of cells around each
//! sub-grid … allowing the gradient primitives to compute the proper values
//! on the boundaries of all sub-grids."* This module provides the same
//! decomposition and ghost-extent arithmetic.

/// One block of a global rectilinear mesh decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubGrid {
    /// Block coordinates within the block grid.
    pub block: [usize; 3],
    /// Global cell offset of the block's first owned cell.
    pub offset: [usize; 3],
    /// Owned cells per axis (no ghosts).
    pub dims: [usize; 3],
}

impl SubGrid {
    /// Owned cell count.
    pub fn ncells(&self) -> usize {
        self.dims[0] * self.dims[1] * self.dims[2]
    }

    /// The block's extent grown by `layers` ghost cells per side, clamped to
    /// the global mesh: returns `(offset, dims)` of the ghosted region.
    ///
    /// Blocks on a global boundary get no ghost layer on that side (one-sided
    /// differences apply there, exactly as on a single grid).
    pub fn ghosted(&self, layers: usize, global_dims: [usize; 3]) -> ([usize; 3], [usize; 3]) {
        let mut off = [0usize; 3];
        let mut dims = [0usize; 3];
        for d in 0..3 {
            let lo = self.offset[d].saturating_sub(layers);
            let hi = (self.offset[d] + self.dims[d] + layers).min(global_dims[d]);
            off[d] = lo;
            dims[d] = hi - lo;
        }
        (off, dims)
    }

    /// Where the owned region sits inside the ghosted extent: `(start, dims)`
    /// in ghosted-local coordinates.
    pub fn interior_in_ghosted(
        &self,
        layers: usize,
        global_dims: [usize; 3],
    ) -> ([usize; 3], [usize; 3]) {
        let (goff, _) = self.ghosted(layers, global_dims);
        let mut start = [0usize; 3];
        for d in 0..3 {
            start[d] = self.offset[d] - goff[d];
        }
        (start, self.dims)
    }
}

/// Partition `global_dims` cells into a `blocks` grid of near-equal blocks.
/// Remainder cells are distributed to the leading blocks, so the union of
/// blocks tiles the global mesh exactly.
///
/// # Panics
/// Panics if any axis has more blocks than cells, or zero blocks.
pub fn partition_blocks(global_dims: [usize; 3], blocks: [usize; 3]) -> Vec<SubGrid> {
    for d in 0..3 {
        assert!(blocks[d] > 0, "axis {d}: zero blocks");
        assert!(
            blocks[d] <= global_dims[d],
            "axis {d}: more blocks ({}) than cells ({})",
            blocks[d],
            global_dims[d]
        );
    }
    let axis_splits = |n: usize, b: usize| -> Vec<(usize, usize)> {
        let base = n / b;
        let rem = n % b;
        let mut out = Vec::with_capacity(b);
        let mut off = 0;
        for i in 0..b {
            let len = base + usize::from(i < rem);
            out.push((off, len));
            off += len;
        }
        out
    };
    let xs = axis_splits(global_dims[0], blocks[0]);
    let ys = axis_splits(global_dims[1], blocks[1]);
    let zs = axis_splits(global_dims[2], blocks[2]);
    let mut out = Vec::with_capacity(blocks[0] * blocks[1] * blocks[2]);
    for (bk, &(oz, nz)) in zs.iter().enumerate() {
        for (bj, &(oy, ny)) in ys.iter().enumerate() {
            for (bi, &(ox, nx)) in xs.iter().enumerate() {
                out.push(SubGrid {
                    block: [bi, bj, bk],
                    offset: [ox, oy, oz],
                    dims: [nx, ny, nz],
                });
            }
        }
    }
    out
}

/// Extract the sub-array of a flattened x-major global field covering
/// `dims` cells at `offset` within `global_dims`.
pub fn extract_block(
    global: &[f32],
    global_dims: [usize; 3],
    offset: [usize; 3],
    dims: [usize; 3],
) -> Vec<f32> {
    assert_eq!(
        global.len(),
        global_dims[0] * global_dims[1] * global_dims[2]
    );
    let mut out = Vec::with_capacity(dims[0] * dims[1] * dims[2]);
    for k in 0..dims[2] {
        for j in 0..dims[1] {
            let src =
                (offset[0]) + global_dims[0] * ((offset[1] + j) + global_dims[1] * (offset[2] + k));
            out.extend_from_slice(&global[src..src + dims[0]]);
        }
    }
    out
}

/// Inverse of [`extract_block`]: write a block's values into a global field.
pub fn insert_block(
    global: &mut [f32],
    global_dims: [usize; 3],
    offset: [usize; 3],
    dims: [usize; 3],
    block: &[f32],
) {
    assert_eq!(block.len(), dims[0] * dims[1] * dims[2]);
    for k in 0..dims[2] {
        for j in 0..dims[1] {
            let dst =
                (offset[0]) + global_dims[0] * ((offset[1] + j) + global_dims[1] * (offset[2] + k));
            let src = dims[0] * (j + dims[1] * k);
            global[dst..dst + dims[0]].copy_from_slice(&block[src..src + dims[0]]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_tiles_exactly() {
        let blocks = partition_blocks([10, 7, 5], [3, 2, 2]);
        assert_eq!(blocks.len(), 12);
        let total: usize = blocks.iter().map(SubGrid::ncells).sum();
        assert_eq!(total, 10 * 7 * 5);
        // Coverage: mark every cell once.
        let mut seen = vec![0u8; 350];
        for b in &blocks {
            for k in 0..b.dims[2] {
                for j in 0..b.dims[1] {
                    for i in 0..b.dims[0] {
                        let idx =
                            (b.offset[0] + i) + 10 * ((b.offset[1] + j) + 7 * (b.offset[2] + k));
                        seen[idx] += 1;
                    }
                }
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn paper_decomposition_3072_subgrids() {
        // 3072³ into 192×192×256 blocks = 16×16×12 = 3072 sub-grids.
        let blocks = partition_blocks([3072, 3072, 3072], [16, 16, 12]);
        assert_eq!(blocks.len(), 3072);
        assert!(blocks.iter().all(|b| b.dims == [192, 192, 256]));
    }

    #[test]
    fn ghost_extents_clamped_at_boundaries() {
        let blocks = partition_blocks([8, 8, 8], [2, 2, 2]);
        let corner = blocks[0]; // offset [0,0,0], dims [4,4,4]
        let (off, dims) = corner.ghosted(1, [8, 8, 8]);
        assert_eq!(off, [0, 0, 0]);
        assert_eq!(dims, [5, 5, 5]); // ghost only on the high sides
        let last = *blocks.last().unwrap(); // offset [4,4,4]
        let (off, dims) = last.ghosted(1, [8, 8, 8]);
        assert_eq!(off, [3, 3, 3]);
        assert_eq!(dims, [5, 5, 5]);
    }

    #[test]
    fn interior_in_ghosted_round_trips() {
        let blocks = partition_blocks([8, 8, 8], [2, 2, 2]);
        for b in blocks {
            let (goff, gdims) = b.ghosted(1, [8, 8, 8]);
            let (start, dims) = b.interior_in_ghosted(1, [8, 8, 8]);
            for d in 0..3 {
                assert_eq!(goff[d] + start[d], b.offset[d]);
                assert!(start[d] + dims[d] <= gdims[d]);
            }
        }
    }

    #[test]
    fn extract_insert_round_trip() {
        let gd = [4, 3, 2];
        let global: Vec<f32> = (0..24).map(|i| i as f32).collect();
        let block = extract_block(&global, gd, [1, 1, 0], [2, 2, 2]);
        assert_eq!(block.len(), 8);
        // Block origin (1,1,0) maps to global index 1 + nx*1 = 5.
        assert_eq!(block[0], global[5]);
        let mut rebuilt = vec![0.0; 24];
        // Re-tile the global array from a full partition.
        for b in partition_blocks(gd, [2, 3, 1]) {
            let blk = extract_block(&global, gd, b.offset, b.dims);
            insert_block(&mut rebuilt, gd, b.offset, b.dims, &blk);
        }
        assert_eq!(rebuilt, global);
    }

    #[test]
    #[should_panic(expected = "more blocks")]
    fn partition_rejects_overdecomposition() {
        partition_blocks([4, 4, 4], [5, 1, 1]);
    }
}
