#![warn(missing_docs)]

//! Rectilinear meshes, fields, decomposition and workloads.
//!
//! The paper evaluates on sub-grids of a 3072³ Rayleigh–Taylor DNS run from
//! LLNL (§IV-B). That dataset is proprietary, so this crate provides:
//!
//! * [`RectilinearMesh`] — 3D rectilinear meshes with per-axis cell-center
//!   coordinate arrays (uniform or stretched), producing the flattened
//!   problem-sized `x`, `y`, `z` arrays the expressions consume;
//! * [`TABLE1_CATALOG`] / [`GridSpec`] — the paper's Table I sub-grid
//!   catalog (192×192×256 … 192×192×3072);
//! * [`RtWorkload`] — a deterministic synthetic velocity field with
//!   vortical structure standing in for the RT dataset. It is defined as an
//!   analytic function of *global* coordinates, so any sub-grid of the
//!   global mesh generates bit-identical data independently — which makes
//!   the distributed ghost-exchange evaluation exactly verifiable;
//! * [`decomp`] — block decomposition with ghost (halo) layers, mirroring
//!   VisIt's ghost-data generation that the paper's distributed test relies
//!   on;
//! * [`analytic`] — closed-form fields (with exact gradients and curl) used
//!   to verify the `grad3d` primitive, something the paper's real dataset
//!   could not offer.

pub mod analytic;
mod catalog;
pub mod decomp;
mod mesh;
mod rt;

pub use catalog::{GridSpec, TABLE1_CATALOG};
pub use decomp::{partition_blocks, SubGrid};
pub use mesh::RectilinearMesh;
pub use rt::RtWorkload;
