//! 3D rectilinear meshes with cell-centered fields.

use rayon::prelude::*;

/// A 3D rectilinear mesh described by per-axis cell-center coordinates.
///
/// Cells are indexed `(i, j, k)` with `i` fastest (x-major linearization
/// `idx = i + nx*(j + ny*k)`), matching the layout the gradient primitive
/// assumes.
#[derive(Debug, Clone, PartialEq)]
pub struct RectilinearMesh {
    axes: [Vec<f32>; 3],
}

impl RectilinearMesh {
    /// Uniform mesh: `dims` cells per axis, cell centers at
    /// `origin + (i + 0.5) * spacing`.
    pub fn uniform(dims: [usize; 3], origin: [f32; 3], spacing: [f32; 3]) -> Self {
        let axis = |n: usize, o: f32, s: f32| -> Vec<f32> {
            (0..n).map(|i| o + (i as f32 + 0.5) * s).collect()
        };
        RectilinearMesh {
            axes: [
                axis(dims[0], origin[0], spacing[0]),
                axis(dims[1], origin[1], spacing[1]),
                axis(dims[2], origin[2], spacing[2]),
            ],
        }
    }

    /// Uniform mesh over the unit cube `[0,1]³`.
    pub fn unit_cube(dims: [usize; 3]) -> Self {
        let spacing = [
            1.0 / dims[0] as f32,
            1.0 / dims[1] as f32,
            1.0 / dims[2] as f32,
        ];
        Self::uniform(dims, [0.0; 3], spacing)
    }

    /// Mesh with explicit (possibly stretched) per-axis cell-center arrays.
    ///
    /// # Panics
    /// Panics if any axis is empty or not strictly increasing.
    pub fn with_axes(xs: Vec<f32>, ys: Vec<f32>, zs: Vec<f32>) -> Self {
        for (name, axis) in [("x", &xs), ("y", &ys), ("z", &zs)] {
            assert!(!axis.is_empty(), "{name} axis must be non-empty");
            assert!(
                axis.windows(2).all(|w| w[0] < w[1]),
                "{name} axis must be strictly increasing"
            );
        }
        RectilinearMesh { axes: [xs, ys, zs] }
    }

    /// Cells per axis.
    pub fn dims(&self) -> [usize; 3] {
        [self.axes[0].len(), self.axes[1].len(), self.axes[2].len()]
    }

    /// Total cell count.
    pub fn ncells(&self) -> usize {
        self.axes[0].len() * self.axes[1].len() * self.axes[2].len()
    }

    /// Per-axis cell-center coordinates.
    pub fn axis(&self, d: usize) -> &[f32] {
        &self.axes[d]
    }

    /// Linear index of cell `(i, j, k)`.
    pub fn index(&self, i: usize, j: usize, k: usize) -> usize {
        let [nx, ny, _] = self.dims();
        i + nx * (j + ny * k)
    }

    /// Cell-center coordinates of cell `(i, j, k)`.
    pub fn cell_center(&self, i: usize, j: usize, k: usize) -> [f32; 3] {
        [self.axes[0][i], self.axes[1][j], self.axes[2][k]]
    }

    /// The flattened problem-sized coordinate arrays `(x, y, z)` the
    /// expression framework consumes (one value per cell, x-major order).
    pub fn coord_arrays(&self) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
        let [nx, ny, nz] = self.dims();
        let n = self.ncells();
        let mut x = vec![0.0f32; n];
        let mut y = vec![0.0f32; n];
        let mut z = vec![0.0f32; n];
        // Parallelize over z-slabs: each slab is a contiguous region.
        let slab = nx * ny;
        x.par_chunks_mut(slab)
            .zip(y.par_chunks_mut(slab))
            .zip(z.par_chunks_mut(slab))
            .enumerate()
            .for_each(|(k, ((xs, ys), zs))| {
                let zk = self.axes[2][k];
                for j in 0..ny {
                    let yj = self.axes[1][j];
                    let row = j * nx;
                    for i in 0..nx {
                        xs[row + i] = self.axes[0][i];
                        ys[row + i] = yj;
                        zs[row + i] = zk;
                    }
                }
            });
        let _ = nz;
        (x, y, z)
    }

    /// Evaluate `f(x, y, z)` at every cell center, in parallel.
    pub fn sample(&self, f: impl Fn(f32, f32, f32) -> f32 + Sync) -> Vec<f32> {
        let [nx, ny, _] = self.dims();
        let slab = nx * ny;
        let mut out = vec![0.0f32; self.ncells()];
        out.par_chunks_mut(slab).enumerate().for_each(|(k, chunk)| {
            let zk = self.axes[2][k];
            for j in 0..ny {
                let yj = self.axes[1][j];
                for i in 0..nx {
                    chunk[j * nx + i] = f(self.axes[0][i], yj, zk);
                }
            }
        });
        out
    }

    /// Extract the sub-mesh covering `dims` cells starting at `offset`.
    ///
    /// # Panics
    /// Panics if the window exceeds the mesh extents.
    pub fn submesh(&self, offset: [usize; 3], dims: [usize; 3]) -> RectilinearMesh {
        let take = |d: usize| -> Vec<f32> {
            assert!(
                offset[d] + dims[d] <= self.axes[d].len(),
                "submesh window exceeds axis {d}"
            );
            self.axes[d][offset[d]..offset[d] + dims[d]].to_vec()
        };
        RectilinearMesh {
            axes: [take(0), take(1), take(2)],
        }
    }

    /// The `dims` auxiliary input as an f32 triple (the small `dims` buffer
    /// passed to `grad3d`).
    pub fn dims_buffer(&self) -> Vec<f32> {
        let [nx, ny, nz] = self.dims();
        vec![nx as f32, ny as f32, nz as f32]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_cell_centers() {
        let m = RectilinearMesh::uniform([4, 2, 2], [0.0; 3], [0.5, 1.0, 2.0]);
        assert_eq!(m.dims(), [4, 2, 2]);
        assert_eq!(m.ncells(), 16);
        assert_eq!(m.cell_center(0, 0, 0), [0.25, 0.5, 1.0]);
        assert_eq!(m.cell_center(3, 1, 1), [1.75, 1.5, 3.0]);
    }

    #[test]
    fn linear_index_is_x_major() {
        let m = RectilinearMesh::unit_cube([3, 4, 5]);
        assert_eq!(m.index(0, 0, 0), 0);
        assert_eq!(m.index(1, 0, 0), 1);
        assert_eq!(m.index(0, 1, 0), 3);
        assert_eq!(m.index(0, 0, 1), 12);
        assert_eq!(m.index(2, 3, 4), 3 * 4 * 5 - 1);
    }

    #[test]
    fn coord_arrays_match_cell_centers() {
        let m = RectilinearMesh::uniform([3, 2, 2], [1.0, 2.0, 3.0], [0.1, 0.2, 0.3]);
        let (x, y, z) = m.coord_arrays();
        for k in 0..2 {
            for j in 0..2 {
                for i in 0..3 {
                    let idx = m.index(i, j, k);
                    let c = m.cell_center(i, j, k);
                    assert_eq!([x[idx], y[idx], z[idx]], c);
                }
            }
        }
    }

    #[test]
    fn sample_evaluates_at_centers() {
        let m = RectilinearMesh::unit_cube([4, 4, 4]);
        let f = m.sample(|x, y, z| x + 10.0 * y + 100.0 * z);
        let c = m.cell_center(2, 1, 3);
        assert!((f[m.index(2, 1, 3)] - (c[0] + 10.0 * c[1] + 100.0 * c[2])).abs() < 1e-6);
    }

    #[test]
    fn submesh_slices_axes() {
        let m = RectilinearMesh::unit_cube([8, 8, 8]);
        let s = m.submesh([2, 0, 4], [3, 8, 4]);
        assert_eq!(s.dims(), [3, 8, 4]);
        assert_eq!(s.cell_center(0, 0, 0), m.cell_center(2, 0, 4));
        assert_eq!(s.cell_center(2, 7, 3), m.cell_center(4, 7, 7));
    }

    #[test]
    #[should_panic(expected = "submesh window exceeds")]
    fn submesh_bounds_checked() {
        RectilinearMesh::unit_cube([4, 4, 4]).submesh([2, 0, 0], [3, 4, 4]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn with_axes_rejects_non_monotone() {
        RectilinearMesh::with_axes(vec![0.0, 0.0], vec![0.0], vec![0.0]);
    }

    #[test]
    fn stretched_axes_are_preserved() {
        let m = RectilinearMesh::with_axes(vec![0.0, 1.0, 4.0], vec![0.0, 2.0], vec![0.0, 1.0]);
        assert_eq!(m.axis(0), &[0.0, 1.0, 4.0]);
        assert_eq!(m.dims(), [3, 2, 2]);
    }

    #[test]
    fn dims_buffer_round_trips() {
        let m = RectilinearMesh::unit_cube([192, 192, 256]);
        assert_eq!(m.dims_buffer(), vec![192.0, 192.0, 256.0]);
    }
}
