//! Closed-form fields with exact derivatives, for verifying the `grad3d`
//! primitive and the vortex-detection expressions.
//!
//! The paper validates visually against a known simulation; a synthetic
//! substrate lets us do better and check gradients against exact calculus.

/// A scalar field with its exact gradient.
pub struct AnalyticScalar {
    /// The field `f(x, y, z)`.
    pub f: fn(f32, f32, f32) -> f32,
    /// Exact gradient `(∂f/∂x, ∂f/∂y, ∂f/∂z)`.
    pub grad: fn(f32, f32, f32) -> [f32; 3],
    /// Display name.
    pub name: &'static str,
}

/// Fields for which second-order central differences are *exact* on a
/// uniform mesh (constants, linears, and products of distinct coordinates),
/// plus smooth fields for convergence testing.
pub const POLYNOMIALS: [AnalyticScalar; 5] = [
    AnalyticScalar {
        name: "constant",
        f: |_, _, _| 3.5,
        grad: |_, _, _| [0.0, 0.0, 0.0],
    },
    AnalyticScalar {
        name: "linear_x",
        f: |x, _, _| 2.0 * x,
        grad: |_, _, _| [2.0, 0.0, 0.0],
    },
    AnalyticScalar {
        name: "linear_mix",
        f: |x, y, z| x - 3.0 * y + 0.5 * z,
        grad: |_, _, _| [1.0, -3.0, 0.5],
    },
    AnalyticScalar {
        name: "bilinear_xy",
        f: |x, y, _| x * y,
        grad: |x, y, _| [y, x, 0.0],
    },
    AnalyticScalar {
        name: "quadratic_z",
        f: |_, _, z| z * z,
        grad: |_, _, z| [0.0, 0.0, 2.0 * z],
    },
];

/// A smooth trigonometric field for convergence-order checks.
pub const SMOOTH: AnalyticScalar = AnalyticScalar {
    name: "smooth_trig",
    f: |x, y, z| (2.0 * x).sin() * (3.0 * y).cos() + z.sin(),
    grad: |x, y, z| {
        [
            2.0 * (2.0 * x).cos() * (3.0 * y).cos(),
            -3.0 * (2.0 * x).sin() * (3.0 * y).sin(),
            z.cos(),
        ]
    },
};

/// The single-mode Taylor–Green vortex with exact curl, for validating the
/// vorticity-magnitude expression end to end.
pub mod taylor_green {
    /// Velocity `(u, v, w)` of the 2D Taylor–Green vortex extruded in z.
    pub fn velocity(x: f32, y: f32, _z: f32) -> [f32; 3] {
        [x.sin() * y.cos(), -(x.cos()) * y.sin(), 0.0]
    }

    /// Exact vorticity `∇×v = (0, 0, 2 sin x sin y)`.
    pub fn vorticity(x: f32, y: f32, _z: f32) -> [f32; 3] {
        [0.0, 0.0, 2.0 * x.sin() * y.sin()]
    }

    /// Exact Q-criterion: for this field `Q = ½(‖Ω‖² − ‖S‖²)` with
    /// `‖Ω‖² = ½‖ω‖²` and strain from the velocity gradient.
    ///
    /// For Taylor–Green the velocity gradient rows are
    /// `(cos x cos y, −sin x sin y, 0)`, `(sin x sin y, −cos x cos y, 0)`
    /// and `(0, 0, 0)`, so
    /// S = diag-ish with ‖S‖² = 2cos²x cos²y and ‖Ω‖² = 2 sin²x sin²y.
    pub fn q_criterion(x: f32, y: f32, _z: f32) -> f32 {
        let s2 = 2.0 * (x.cos() * y.cos()).powi(2);
        let w2 = 2.0 * (x.sin() * y.sin()).powi(2);
        0.5 * (w2 - s2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polynomial_gradients_are_consistent() {
        // Spot-check each closed form against a tight finite difference in
        // f64-ish accuracy bounds.
        let pts = [(0.3f32, -0.2f32, 0.7f32), (1.1, 0.5, -0.4)];
        let eps = 1e-3f32;
        for a in POLYNOMIALS.iter().chain(std::iter::once(&SMOOTH)) {
            for &(x, y, z) in &pts {
                let g = (a.grad)(x, y, z);
                let fd_x = ((a.f)(x + eps, y, z) - (a.f)(x - eps, y, z)) / (2.0 * eps);
                let fd_y = ((a.f)(x, y + eps, z) - (a.f)(x, y - eps, z)) / (2.0 * eps);
                let fd_z = ((a.f)(x, y, z + eps) - (a.f)(x, y, z - eps)) / (2.0 * eps);
                assert!((g[0] - fd_x).abs() < 1e-2, "{}: d/dx", a.name);
                assert!((g[1] - fd_y).abs() < 1e-2, "{}: d/dy", a.name);
                assert!((g[2] - fd_z).abs() < 1e-2, "{}: d/dz", a.name);
            }
        }
    }

    #[test]
    fn taylor_green_vorticity_is_curl_of_velocity() {
        let eps = 1e-3f32;
        let (x, y, z) = (0.8f32, 1.3f32, 0.0f32);
        let dwdy = (taylor_green::velocity(x, y + eps, z)[2]
            - taylor_green::velocity(x, y - eps, z)[2])
            / (2.0 * eps);
        let dvdz = (taylor_green::velocity(x, y, z + eps)[1]
            - taylor_green::velocity(x, y, z - eps)[1])
            / (2.0 * eps);
        let dudz = (taylor_green::velocity(x, y, z + eps)[0]
            - taylor_green::velocity(x, y, z - eps)[0])
            / (2.0 * eps);
        let dwdx = (taylor_green::velocity(x + eps, y, z)[2]
            - taylor_green::velocity(x - eps, y, z)[2])
            / (2.0 * eps);
        let dvdx = (taylor_green::velocity(x + eps, y, z)[1]
            - taylor_green::velocity(x - eps, y, z)[1])
            / (2.0 * eps);
        let dudy = (taylor_green::velocity(x, y + eps, z)[0]
            - taylor_green::velocity(x, y - eps, z)[0])
            / (2.0 * eps);
        let fd = [dwdy - dvdz, dudz - dwdx, dvdx - dudy];
        let exact = taylor_green::vorticity(x, y, z);
        for d in 0..3 {
            assert!((fd[d] - exact[d]).abs() < 1e-2, "component {d}");
        }
    }

    #[test]
    fn taylor_green_q_sign_structure() {
        // Vortex cores (x=y=π/2): rotation dominates, Q > 0.
        let pi_2 = std::f32::consts::FRAC_PI_2;
        assert!(taylor_green::q_criterion(pi_2, pi_2, 0.0) > 0.0);
        // Strain-dominated stagnation points (x=y=0): Q < 0.
        assert!(taylor_green::q_criterion(0.0, 0.0, 0.0) < 0.0);
    }
}
