//! Synthetic Rayleigh–Taylor-like workload.
//!
//! Substitution (see DESIGN.md): the paper uses a proprietary 3072³ RT DNS
//! dataset; we generate a deterministic analytic velocity field with the
//! properties the evaluation needs — vortical structure (non-zero curl and
//! Q-criterion), multi-scale modes, and *pointwise determinism in global
//! coordinates* so distributed sub-grids generate identical data
//! independently.
//!
//! The field is a superposition of Taylor–Green-style vortex modes plus an
//! RT-flavoured bubble/spike updraft term:
//!
//! ```text
//! u = Σ_m  a_m ·  sin(kx x + φ) cos(ky y + ψ) cos(kz z + χ)
//! v = Σ_m -a_m ·  cos(kx x + φ) sin(ky y + ψ) cos(kz z + χ) · kx/ky
//! w = Σ_m  b_m ·  cos(kx x + φ) cos(ky y + ψ) sin(kz z + χ)
//!     + c · cos(2π x / L) · cos(2π y / L)        (RT plume)
//! ```
//!
//! Each mode is individually divergence-reduced (the u/v pair cancels), so
//! the field qualitatively resembles incompressible turbulence.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

use crate::mesh::RectilinearMesh;

#[derive(Debug, Clone, Copy, PartialEq)]
struct Mode {
    kx: f32,
    ky: f32,
    kz: f32,
    a: f32,
    b: f32,
    phase: [f32; 3],
}

/// A deterministic synthetic stand-in for the paper's RT velocity field.
#[derive(Debug, Clone, PartialEq)]
pub struct RtWorkload {
    modes: Vec<Mode>,
    plume_amp: f32,
    plume_k: f32,
}

impl RtWorkload {
    /// Build a workload with `nmodes` vortex modes from a fixed seed.
    pub fn new(seed: u64, nmodes: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let tau = std::f32::consts::TAU;
        let modes = (0..nmodes)
            .map(|m| {
                // Wavenumbers grow with mode index: multi-scale structure.
                let base = tau * (1.0 + m as f32);
                let mut jitter = [0.0f32; 3];
                for j in &mut jitter {
                    *j = 1.0 + 0.3 * (rng.gen::<f32>() - 0.5);
                }
                let amp = 1.0 / (1.0 + m as f32); // decaying spectrum
                Mode {
                    kx: base * jitter[0],
                    ky: base * jitter[1],
                    kz: base * jitter[2],
                    a: amp * (0.5 + rng.gen::<f32>()),
                    b: 0.6 * amp * (0.5 + rng.gen::<f32>()),
                    phase: [
                        tau * rng.gen::<f32>(),
                        tau * rng.gen::<f32>(),
                        tau * rng.gen::<f32>(),
                    ],
                }
            })
            .collect();
        RtWorkload {
            modes,
            plume_amp: 0.8,
            plume_k: tau,
        }
    }

    /// The default evaluation workload (seed and mode count used throughout
    /// the benchmark harness).
    pub fn paper_default() -> Self {
        Self::new(0x005C_2012, 4)
    }

    /// Velocity at a global coordinate.
    pub fn velocity_at(&self, x: f32, y: f32, z: f32) -> [f32; 3] {
        let mut u = 0.0f32;
        let mut v = 0.0f32;
        let mut w = 0.0f32;
        for m in &self.modes {
            let sx = (m.kx * x + m.phase[0]).sin();
            let cx = (m.kx * x + m.phase[0]).cos();
            let sy = (m.ky * y + m.phase[1]).sin();
            let cy = (m.ky * y + m.phase[1]).cos();
            let sz = (m.kz * z + m.phase[2]).sin();
            let cz = (m.kz * z + m.phase[2]).cos();
            u += m.a * sx * cy * cz;
            v -= m.a * (m.kx / m.ky) * cx * sy * cz;
            w += m.b * cx * cy * sz;
        }
        w += self.plume_amp * (self.plume_k * x).cos() * (self.plume_k * y).cos();
        [u, v, w]
    }

    /// Sample the three velocity components over a mesh, in parallel.
    /// Returns `(u, v, w)` flattened in the mesh's x-major order.
    pub fn sample_velocity(&self, mesh: &RectilinearMesh) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
        let [nx, ny, _] = mesh.dims();
        let n = mesh.ncells();
        let slab = nx * ny;
        let mut u = vec![0.0f32; n];
        let mut v = vec![0.0f32; n];
        let mut w = vec![0.0f32; n];
        u.par_chunks_mut(slab)
            .zip(v.par_chunks_mut(slab))
            .zip(w.par_chunks_mut(slab))
            .enumerate()
            .for_each(|(k, ((us, vs), ws))| {
                let zk = mesh.axis(2)[k];
                for j in 0..ny {
                    let yj = mesh.axis(1)[j];
                    for i in 0..nx {
                        let vel = self.velocity_at(mesh.axis(0)[i], yj, zk);
                        us[j * nx + i] = vel[0];
                        vs[j * nx + i] = vel[1];
                        ws[j * nx + i] = vel[2];
                    }
                }
            });
        (u, v, w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let a = RtWorkload::new(7, 3);
        let b = RtWorkload::new(7, 3);
        assert_eq!(a.velocity_at(0.3, 0.7, 0.1), b.velocity_at(0.3, 0.7, 0.1));
    }

    #[test]
    fn different_seeds_differ() {
        let a = RtWorkload::new(1, 3);
        let b = RtWorkload::new(2, 3);
        assert_ne!(a.velocity_at(0.5, 0.5, 0.5), b.velocity_at(0.5, 0.5, 0.5));
    }

    #[test]
    fn subgrid_sampling_matches_global_sampling() {
        // The property the distributed test depends on: sampling a submesh
        // equals slicing a global sample.
        let wl = RtWorkload::paper_default();
        let global = RectilinearMesh::unit_cube([8, 8, 8]);
        let (gu, _, _) = wl.sample_velocity(&global);
        let sub = global.submesh([2, 3, 4], [4, 2, 3]);
        let (su, _, _) = wl.sample_velocity(&sub);
        for k in 0..3 {
            for j in 0..2 {
                for i in 0..4 {
                    let g = gu[global.index(2 + i, 3 + j, 4 + k)];
                    let s = su[sub.index(i, j, k)];
                    assert_eq!(g, s, "mismatch at ({i},{j},{k})");
                }
            }
        }
    }

    #[test]
    fn field_has_vorticity() {
        // Central difference of w along y minus v along z must be non-zero
        // somewhere: the workload must exercise the vortex detectors.
        let wl = RtWorkload::paper_default();
        let eps = 1e-3f32;
        let dwdy = (wl.velocity_at(0.3, 0.4 + eps, 0.5)[2]
            - wl.velocity_at(0.3, 0.4 - eps, 0.5)[2])
            / (2.0 * eps);
        let dvdz = (wl.velocity_at(0.3, 0.4, 0.5 + eps)[1]
            - wl.velocity_at(0.3, 0.4, 0.5 - eps)[1])
            / (2.0 * eps);
        assert!(
            (dwdy - dvdz).abs() > 1e-3,
            "curl_x ~ 0: field is irrotational"
        );
    }

    #[test]
    fn velocity_magnitudes_are_order_one() {
        let wl = RtWorkload::paper_default();
        let m = RectilinearMesh::unit_cube([16, 16, 16]);
        let (u, v, w) = wl.sample_velocity(&m);
        let max = u
            .iter()
            .chain(&v)
            .chain(&w)
            .fold(0.0f32, |acc, &x| acc.max(x.abs()));
        assert!(max > 0.1 && max < 100.0, "max |component| = {max}");
    }
}
