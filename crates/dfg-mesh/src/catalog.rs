//! The paper's Table I sub-grid catalog.

/// One evaluation grid: a sub-grid of the 3072³ RT simulation time step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridSpec {
    /// Cells along x.
    pub nx: usize,
    /// Cells along y.
    pub ny: usize,
    /// Cells along z.
    pub nz: usize,
}

impl GridSpec {
    /// Construct a spec.
    pub const fn new(nx: usize, ny: usize, nz: usize) -> Self {
        GridSpec { nx, ny, nz }
    }

    /// Cell count.
    pub const fn ncells(&self) -> u64 {
        (self.nx * self.ny * self.nz) as u64
    }

    /// Dims triple.
    pub const fn dims(&self) -> [usize; 3] {
        [self.nx, self.ny, self.nz]
    }

    /// "Data size" as the paper's Table I reports it: the six single-
    /// precision problem-sized arrays each test case loads (velocity
    /// `u, v, w` plus point coordinates `x, y, z`).
    pub const fn data_bytes(&self) -> u64 {
        self.ncells() * 6 * 4
    }

    /// Human-readable size using binary megabytes/gigabytes, matching the
    /// Table I formatting (e.g. `218 MB`, `1.1 GB`).
    pub fn data_size_display(&self) -> String {
        let bytes = self.data_bytes() as f64;
        let mb = bytes / (1u64 << 20) as f64;
        if mb < 1000.0 {
            format!("{:.0} MB", mb.round())
        } else {
            format!("{:.1} GB", bytes / (1u64 << 30) as f64)
        }
    }
}

impl std::fmt::Display for GridSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} x {} x {:04}", self.nx, self.ny, self.nz)
    }
}

/// Table I: twelve sub-grids of the 3072³ RT time step, 192×192×(256…3072),
/// 9.4 M – 113.2 M cells.
pub const TABLE1_CATALOG: [GridSpec; 12] = [
    GridSpec::new(192, 192, 256),
    GridSpec::new(192, 192, 512),
    GridSpec::new(192, 192, 768),
    GridSpec::new(192, 192, 1024),
    GridSpec::new(192, 192, 1280),
    GridSpec::new(192, 192, 1536),
    GridSpec::new(192, 192, 1792),
    GridSpec::new(192, 192, 2048),
    GridSpec::new(192, 192, 2304),
    GridSpec::new(192, 192, 2560),
    GridSpec::new(192, 192, 2816),
    GridSpec::new(192, 192, 3072),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_matches_table1_cell_counts() {
        let mut sorted = TABLE1_CATALOG;
        sorted.sort_by_key(|g| g.nz);
        let expected: [u64; 12] = [
            9_437_184,
            18_874_368,
            28_311_552,
            37_748_736,
            47_185_920,
            56_623_104,
            66_060_288,
            75_497_472,
            84_934_656,
            94_371_840,
            103_809_024,
            113_246_208,
        ];
        for (g, e) in sorted.iter().zip(expected) {
            assert_eq!(g.ncells(), e, "{g}");
        }
    }

    #[test]
    fn data_sizes_match_table1_shape() {
        // Table I: first row 218 MB, last row 2.6 GB (six f32 arrays/cell).
        let mut sorted = TABLE1_CATALOG;
        sorted.sort_by_key(|g| g.nz);
        assert_eq!(sorted[0].data_size_display(), "216 MB"); // paper: 218 MB
        assert_eq!(sorted[11].data_size_display(), "2.5 GB"); // paper: 2.6 GB
                                                              // Within 2% of the paper's figures.
        assert!((sorted[0].data_bytes() as f64 - 218e6 * 1.048).abs() / 218e6 < 0.05);
    }

    #[test]
    fn display_formats_like_table1() {
        assert_eq!(GridSpec::new(192, 192, 256).to_string(), "192 x 192 x 0256");
        assert_eq!(
            GridSpec::new(192, 192, 3072).to_string(),
            "192 x 192 x 3072"
        );
    }
}
