//! Property tests for mesh decomposition and the synthetic workload.

use proptest::prelude::*;

use dfg_mesh::decomp::{extract_block, insert_block};
use dfg_mesh::{partition_blocks, RectilinearMesh, RtWorkload, SubGrid};

fn dims_and_blocks() -> impl Strategy<Value = ([usize; 3], [usize; 3])> {
    (1usize..12, 1usize..12, 1usize..12).prop_flat_map(|(nx, ny, nz)| {
        (1..=nx, 1..=ny, 1..=nz).prop_map(move |(bx, by, bz)| ([nx, ny, nz], [bx, by, bz]))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every partition tiles the global mesh exactly once.
    #[test]
    fn partition_is_an_exact_tiling((dims, blocks) in dims_and_blocks()) {
        let parts = partition_blocks(dims, blocks);
        prop_assert_eq!(parts.len(), blocks[0] * blocks[1] * blocks[2]);
        let mut cover = vec![0u32; dims[0] * dims[1] * dims[2]];
        for b in &parts {
            for k in 0..b.dims[2] {
                for j in 0..b.dims[1] {
                    for i in 0..b.dims[0] {
                        let idx = (b.offset[0] + i)
                            + dims[0] * ((b.offset[1] + j) + dims[1] * (b.offset[2] + k));
                        cover[idx] += 1;
                    }
                }
            }
        }
        prop_assert!(cover.iter().all(|&c| c == 1));
    }

    /// Ghost extents are always inside the global mesh and contain the
    /// owned region; the interior relocation arithmetic is consistent.
    #[test]
    fn ghost_extents_are_consistent(
        (dims, blocks) in dims_and_blocks(),
        layers in 1usize..3,
    ) {
        for b in partition_blocks(dims, blocks) {
            let (goff, gdims) = b.ghosted(layers, dims);
            let (istart, idims) = b.interior_in_ghosted(layers, dims);
            for d in 0..3 {
                prop_assert!(goff[d] + gdims[d] <= dims[d]);
                prop_assert!(goff[d] <= b.offset[d]);
                prop_assert_eq!(goff[d] + istart[d], b.offset[d]);
                prop_assert_eq!(idims[d], b.dims[d]);
                prop_assert!(istart[d] + idims[d] <= gdims[d]);
                // Ghost layer thickness never exceeds `layers` per side.
                prop_assert!(b.offset[d] - goff[d] <= layers);
            }
        }
    }

    /// extract_block ∘ insert_block over a full partition reassembles the
    /// global array.
    #[test]
    fn block_extract_insert_reassembles((dims, blocks) in dims_and_blocks()) {
        let n = dims[0] * dims[1] * dims[2];
        let global: Vec<f32> = (0..n).map(|i| i as f32 * 0.5 - 3.0).collect();
        let mut rebuilt = vec![f32::NAN; n];
        for b in partition_blocks(dims, blocks) {
            let blk = extract_block(&global, dims, b.offset, b.dims);
            prop_assert_eq!(blk.len(), b.ncells());
            insert_block(&mut rebuilt, dims, b.offset, b.dims, &blk);
        }
        prop_assert_eq!(rebuilt, global);
    }

    /// Sampling a submesh equals slicing a global sample, everywhere.
    #[test]
    fn submesh_sampling_matches_global(
        dims in (2usize..8, 2usize..8, 2usize..8).prop_map(|(a, b, c)| [a, b, c]),
        seed in 0u64..1000,
    ) {
        let wl = RtWorkload::new(seed, 2);
        let global = RectilinearMesh::unit_cube(dims);
        let (gu, gv, gw) = wl.sample_velocity(&global);
        // A corner submesh of half extents.
        let half = [dims[0] / 2 + 1, dims[1] / 2 + 1, dims[2] / 2 + 1];
        let off = [dims[0] - half[0], dims[1] - half[1], dims[2] - half[2]];
        let sub = global.submesh(off, half);
        let (su, sv, sw) = wl.sample_velocity(&sub);
        for k in 0..half[2] {
            for j in 0..half[1] {
                for i in 0..half[0] {
                    let g = global.index(off[0] + i, off[1] + j, off[2] + k);
                    let s = sub.index(i, j, k);
                    prop_assert_eq!(gu[g].to_bits(), su[s].to_bits());
                    prop_assert_eq!(gv[g].to_bits(), sv[s].to_bits());
                    prop_assert_eq!(gw[g].to_bits(), sw[s].to_bits());
                }
            }
        }
    }

    /// Linear indexing round-trips through (i, j, k).
    #[test]
    fn index_unravel_roundtrip(
        dims in (1usize..10, 1usize..10, 1usize..10).prop_map(|(a, b, c)| [a, b, c]),
    ) {
        let mesh = RectilinearMesh::unit_cube(dims);
        let mut seen = vec![false; mesh.ncells()];
        for k in 0..dims[2] {
            for j in 0..dims[1] {
                for i in 0..dims[0] {
                    let idx = mesh.index(i, j, k);
                    prop_assert!(!seen[idx], "index collision at ({i},{j},{k})");
                    seen[idx] = true;
                }
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }
}

#[test]
fn subgrid_ncells_consistent_with_dims() {
    let b = SubGrid {
        block: [0, 0, 0],
        offset: [2, 3, 4],
        dims: [5, 6, 7],
    };
    assert_eq!(b.ncells(), 210);
}
