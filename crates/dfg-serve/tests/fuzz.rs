//! Deterministic protocol fuzzing: the server must never panic on
//! arbitrary bytes — every frame is answered with a typed reply or the
//! connection is closed cleanly, and the server keeps serving well-formed
//! requests afterwards.
//!
//! The corpus is generated from a seeded xorshift PRNG, so a failure
//! reproduces exactly: re-run with the same seed and the same frames
//! arrive in the same order.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use dfg_serve::{Client, ExecStrategy, ServeConfig, Server};

/// Seeded xorshift64 — the same generator the fault plan uses, so fuzz
/// runs are reproducible without any external RNG dependency.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// A valid derive frame to mutate from.
fn valid_frame(id: u64) -> String {
    format!(
        "{{\"op\":\"derive\",\"id\":{id},\"tenant\":\"fuzz\",\"expr\":\"m = u*v\",\
         \"grid\":[4,4,4],\"strategy\":\"fusion\",\"data\":false}}\n"
    )
}

/// The seeded corpus: raw garbage, invalid UTF-8, truncated JSON,
/// bit-flipped valid frames, huge/negative/non-finite numeric fields.
fn corpus(seed: u64) -> Vec<Vec<u8>> {
    let mut rng = XorShift::new(seed);
    let mut frames: Vec<Vec<u8>> = Vec::new();

    // Raw byte garbage (often invalid UTF-8), newline-terminated.
    for _ in 0..8 {
        let len = (rng.next() % 200 + 1) as usize;
        let mut f: Vec<u8> = (0..len).map(|_| (rng.next() % 256) as u8).collect();
        f.retain(|&b| b != b'\n');
        f.push(b'\n');
        frames.push(f);
    }

    // Truncated valid JSON at a random cut, newline-terminated.
    for i in 0..8 {
        let full = valid_frame(i);
        let cut = (rng.next() as usize % (full.len() - 2)).max(1);
        let mut f = full.as_bytes()[..cut].to_vec();
        f.push(b'\n');
        frames.push(f);
    }

    // One random bit flipped somewhere in a valid frame.
    for i in 0..8 {
        let mut f = valid_frame(i).into_bytes();
        let pos = rng.next() as usize % (f.len() - 1);
        f[pos] ^= 1 << (rng.next() % 8);
        frames.push(f);
    }

    // Hostile numeric fields: ids and deadlines that are huge, negative,
    // fractional, or non-finite after parsing.
    for id_text in ["1e999", "-7", "0.5", "18446744073709551616", "1e308"] {
        frames.push(format!("{{\"op\":\"ping\",\"id\":{id_text}}}\n").into_bytes());
    }
    for deadline in ["1e999", "-3", "0.25", "null", "\"soon\""] {
        frames.push(
            format!(
                "{{\"op\":\"derive\",\"id\":9,\"tenant\":\"fuzz\",\"expr\":\"m = u*v\",\
                 \"grid\":[4,4,4],\"strategy\":\"fusion\",\"data\":false,\
                 \"deadline_ms\":{deadline}}}\n"
            )
            .into_bytes(),
        );
    }

    // Structurally valid JSON, protocol-invalid shapes.
    for line in [
        "{}",
        "[]",
        "null",
        "42",
        "\"derive\"",
        "{\"op\":\"derive\"}",
        "{\"op\":\"nope\",\"id\":1}",
        "{\"op\":\"derive\",\"id\":1,\"tenant\":\"t\",\"expr\":\"m = u*v\",\"grid\":[4,4],\"strategy\":\"fusion\",\"data\":false}",
        "{\"op\":\"derive\",\"id\":1,\"tenant\":\"t\",\"expr\":\"m = u*v\",\"grid\":[0,0,0],\"strategy\":\"warp\",\"data\":false}",
    ] {
        frames.push(format!("{line}\n").into_bytes());
    }

    frames
}

#[test]
fn garbage_frames_never_panic_the_server() {
    let config = ServeConfig {
        max_line_bytes: 4096,
        read_deadline: Some(Duration::from_millis(200)),
        ..ServeConfig::default()
    };
    let server = Server::start("127.0.0.1:0", config).unwrap();
    let addr = server.local_addr().to_string();

    for frame in corpus(0x5eed) {
        let mut sock = TcpStream::connect(&addr).unwrap();
        sock.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        if sock.write_all(&frame).is_err() {
            continue; // server closed first: acceptable, must not panic
        }
        let mut reader = BufReader::new(sock);
        let mut line = String::new();
        match reader.read_line(&mut line) {
            // A typed reply: must be one JSON object mentioning a status.
            Ok(n) if n > 0 => assert!(
                line.contains("\"status\""),
                "reply to garbage is not a typed status line: {line:?}"
            ),
            // Clean close or reset: also acceptable.
            Ok(_) | Err(_) => {}
        }
    }

    // The server survived the whole corpus and still serves real work.
    let mut c = Client::connect(&addr).unwrap();
    c.ping().unwrap();
    let reply = c
        .derive(
            "post-fuzz",
            "m = u*v",
            [4, 4, 4],
            ExecStrategy::Fusion,
            true,
        )
        .unwrap();
    assert_eq!(reply.ncells, 64);
    c.shutdown().unwrap();
    server.join().unwrap();
}

#[test]
fn malformed_frames_echo_ids_and_do_not_poison_the_connection() {
    let server = Server::start("127.0.0.1:0", ServeConfig::default()).unwrap();
    let addr = server.local_addr().to_string();

    let mut sock = TcpStream::connect(&addr).unwrap();
    sock.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    // Coherent enough to carry an id, but not a valid request.
    sock.write_all(b"{\"op\":\"derive\",\"id\":77,\"tenant\":42}\n")
        .unwrap();
    let mut reader = BufReader::new(sock.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(
        line.contains("\"status\":\"error\"") && line.contains("\"id\":77"),
        "malformed frame should get a typed error echoing id 77: {line:?}"
    );

    // The same connection still serves a valid request afterwards.
    sock.write_all(valid_frame(78).as_bytes()).unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(
        line.contains("\"status\":\"ok\"") && line.contains("\"id\":78"),
        "connection poisoned after malformed frame: {line:?}"
    );

    let mut c = Client::connect(&addr).unwrap();
    c.shutdown().unwrap();
    server.join().unwrap();
}

#[test]
fn oversized_frames_are_rejected_without_buffering() {
    let config = ServeConfig {
        max_line_bytes: 1024,
        ..ServeConfig::default()
    };
    let server = Server::start("127.0.0.1:0", config).unwrap();
    let addr = server.local_addr().to_string();

    let mut sock = TcpStream::connect(&addr).unwrap();
    sock.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    // A 64 KiB frame against a 1 KiB cap.
    let mut big = vec![b'x'; 64 * 1024];
    big.push(b'\n');
    sock.write_all(&big).unwrap();
    let mut reader = BufReader::new(sock.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(
        line.contains("\"status\":\"too_large\""),
        "expected typed too_large reject: {line:?}"
    );

    // The oversized frame was discarded through its newline: the next
    // frame parses normally.
    sock.write_all(valid_frame(5).as_bytes()).unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(
        line.contains("\"status\":\"ok\"") && line.contains("\"id\":5"),
        "stream desynchronized after oversized frame: {line:?}"
    );

    assert_eq!(server.counters().rejected_too_large, 1);
    let mut c = Client::connect(&addr).unwrap();
    c.shutdown().unwrap();
    server.join().unwrap();
}

#[test]
fn slow_loris_is_disconnected_but_idle_connections_live() {
    let config = ServeConfig {
        read_deadline: Some(Duration::from_millis(150)),
        ..ServeConfig::default()
    };
    let server = Server::start("127.0.0.1:0", config).unwrap();
    let addr = server.local_addr().to_string();

    // An idle connection (no frame started) outlives the read deadline.
    let mut idle = Client::connect(&addr).unwrap();
    std::thread::sleep(Duration::from_millis(400));
    idle.ping().expect("idle keep-alive connection was killed");

    // A trickling connection (frame started, never finished) is cut off.
    let mut loris = TcpStream::connect(&addr).unwrap();
    loris
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    loris.write_all(b"{\"op\":\"pi").unwrap();
    let t0 = Instant::now();
    let mut buf = [0u8; 16];
    // The server gives up on the half-frame and closes: read returns EOF
    // (or a reset) well before our own 5 s guard.
    let dead = matches!(loris.read(&mut buf), Ok(0) | Err(_));
    assert!(dead, "slow-loris connection was not torn down");
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "teardown took too long: {:?}",
        t0.elapsed()
    );

    idle.shutdown().unwrap();
    server.join().unwrap();
}
