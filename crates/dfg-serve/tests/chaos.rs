//! Chaos acceptance: multi-tenant load under seeded connection faults.
//!
//! Four tenants push one hundred requests each while the server's
//! accepted sockets drop, stall, and garble under a seeded
//! [`dfg_ocl::FaultPlan`]. The bar:
//!
//! * **zero panics** — the server answers or cleanly closes, always;
//! * **bit-exactness** — every reply that survives the faults carries
//!   bits identical to a fault-free local engine run;
//! * **no leaks** — after the load stops and the idle TTL passes, every
//!   tenant session is evicted and device-byte accounting returns to
//!   zero;
//! * **bounded rejection** — an expired deadline is answered
//!   `deadline_exceeded` without waiting on execution.

use std::thread;
use std::time::{Duration, Instant};

use dfg_core::{Engine, FieldSet, Strategy};
use dfg_mesh::{RectilinearMesh, RtWorkload};
use dfg_ocl::{DeviceProfile, FaultPlan};
use dfg_serve::{Client, ClientError, ExecStrategy, RejectKind, Response, ServeConfig, Server};

const EXPR: &str = "vmag = sqrt(u*u + v*v + w*w)";
const GRID: [usize; 3] = [8, 8, 8];
const TENANTS: usize = 4;
const REQUESTS: usize = 100;

/// Reference bits from a fault-free, local, single-tenant run.
fn local_bits() -> Vec<u32> {
    let mesh = RectilinearMesh::unit_cube(GRID);
    let fields = FieldSet::for_rt_mesh(&mesh, &RtWorkload::paper_default());
    let mut engine = Engine::new(DeviceProfile::intel_x5660());
    let report = engine.derive(EXPR, &fields, Strategy::Fusion).unwrap();
    report
        .field
        .unwrap()
        .data
        .iter()
        .map(|f| f.to_bits())
        .collect()
}

struct LoadOutcome {
    ok: usize,
    dropped: usize,
}

/// Drive `TENANTS × REQUESTS` derives against `addr`, reconnecting on
/// connection faults. Every surviving reply is asserted bit-identical to
/// `want`; everything else (I/O faults, garbled frames answered with
/// typed errors, rejections) counts as dropped.
fn run_load(addr: &str, want: &[u32]) -> LoadOutcome {
    let mut handles = Vec::new();
    for t in 0..TENANTS {
        let addr = addr.to_string();
        let want = want.to_vec();
        handles.push(thread::spawn(move || {
            let tenant = format!("tenant-{t}");
            let mut client: Option<Client> = None;
            let (mut ok, mut dropped) = (0usize, 0usize);
            for _ in 0..REQUESTS {
                let c = match &mut client {
                    Some(c) => c,
                    None => match Client::connect(&addr) {
                        Ok(c) => {
                            // A bounded read guard so a reply lost to a
                            // garbled id cannot hang the driver.
                            c.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
                            client.insert(c)
                        }
                        Err(_) => {
                            dropped += 1;
                            continue;
                        }
                    },
                };
                match c.derive_with_deadline(
                    &tenant,
                    EXPR,
                    GRID,
                    ExecStrategy::Fusion,
                    true,
                    Some(Duration::from_secs(30)),
                ) {
                    Ok(reply) => {
                        // A garble can mutate the request into a *different
                        // but valid* request, which the server faithfully
                        // executes. The reply's echo exposes that: a
                        // mismatched expr/tenant/shape — or a missing
                        // payload when one was requested (a garbled "data"
                        // key) — is an integrity drop, not a correctness bug.
                        if reply.expr != EXPR
                            || reply.tenant != tenant
                            || reply.ncells != (GRID[0] * GRID[1] * GRID[2]) as u64
                            || reply.data_bits.is_none()
                        {
                            dropped += 1;
                            continue;
                        }
                        assert_eq!(
                            reply.data_bits.as_deref(),
                            Some(&want[..]),
                            "{tenant}: surviving reply is not bit-exact"
                        );
                        ok += 1;
                    }
                    Err(ClientError::Io(_)) => {
                        // Injected drop/stall-timeout: reconnect and move on.
                        client = None;
                        dropped += 1;
                    }
                    Err(_) => {
                        // A garbled frame answered with a typed error, or a
                        // typed rejection. The connection itself is fine.
                        dropped += 1;
                    }
                }
            }
            (ok, dropped)
        }));
    }
    let mut out = LoadOutcome { ok: 0, dropped: 0 };
    for h in handles {
        let (ok, dropped) = h.join().expect("tenant thread panicked");
        out.ok += ok;
        out.dropped += dropped;
    }
    out
}

fn chaos_config(faults: Option<FaultPlan>) -> ServeConfig {
    ServeConfig {
        conn_faults: faults,
        conn_stall: Duration::from_millis(5),
        idle_ttl: Some(Duration::from_millis(300)),
        ..ServeConfig::default()
    }
}

#[test]
fn chaos_load_is_bit_exact_and_leak_free() {
    let want = local_bits();

    // Fault-free baseline: nothing may drop.
    let server = Server::start("127.0.0.1:0", chaos_config(None)).unwrap();
    let out = run_load(&server.local_addr().to_string(), &want);
    assert_eq!(
        out.ok,
        TENANTS * REQUESTS,
        "fault-free run dropped requests"
    );
    assert_eq!(out.dropped, 0);
    server.shutdown();
    server.join().unwrap();

    // Faulted runs at increasing rates: drops are expected, panics and
    // bit-drift are not, and some work must still get through.
    for spec in [
        "conn_drop:0.005, conn_stall:0.003, byte_garble:0.002, seed=11",
        "conn_drop:0.025, conn_stall:0.015, byte_garble:0.01, seed=12",
        "conn_drop:0.1, conn_stall:0.06, byte_garble:0.04, seed=13",
    ] {
        let plan = FaultPlan::parse(spec).unwrap();
        let server = Server::start("127.0.0.1:0", chaos_config(Some(plan))).unwrap();
        let addr = server.local_addr().to_string();
        let out = run_load(&addr, &want);
        assert_eq!(out.ok + out.dropped, TENANTS * REQUESTS);
        assert!(out.ok > 0, "no request survived `{spec}`");

        // Lifecycle: once the load stops and the idle TTL passes, every
        // tenant session is evicted and device accounting returns to zero.
        // (Stats requests do not create sessions, so polling is safe.)
        let deadline = Instant::now() + Duration::from_secs(10);
        let evicted = loop {
            // Faults also hit the stats connection; retry through them.
            let polled = Client::connect(&addr).ok().and_then(|mut c| {
                c.set_read_timeout(Some(Duration::from_secs(2))).ok()?;
                match c.stats() {
                    Ok(Response::Stats {
                        server: counters,
                        tenants,
                        ..
                    }) => Some((counters, tenants)),
                    _ => None,
                }
            });
            if let Some((counters, tenants)) = polled {
                if tenants.is_empty() {
                    break counters;
                }
            }
            assert!(
                Instant::now() < deadline,
                "`{spec}`: sessions still alive long after the idle TTL"
            );
            thread::sleep(Duration::from_millis(100));
        };
        assert!(
            evicted.evicted_idle >= TENANTS as u64,
            "`{spec}`: expected every tenant evicted, got {}",
            evicted.evicted_idle
        );

        server.shutdown();
        server.join().expect("server panicked under chaos");
    }
}

#[test]
fn expired_deadline_is_rejected_in_bounded_time() {
    // A long batch window guarantees the deadline (shorter than the
    // window) expires while the request is still queued.
    let config = ServeConfig {
        batch_window: Duration::from_millis(150),
        ..ServeConfig::default()
    };
    let server = Server::start("127.0.0.1:0", config).unwrap();
    let mut c = Client::connect(&server.local_addr().to_string()).unwrap();

    let t0 = Instant::now();
    let err = c
        .derive_with_deadline(
            "hurry",
            EXPR,
            GRID,
            ExecStrategy::Fusion,
            true,
            Some(Duration::from_millis(20)),
        )
        .unwrap_err();
    match err {
        ClientError::Rejected { kind, .. } => assert_eq!(kind, RejectKind::DeadlineExceeded),
        other => panic!("expected deadline_exceeded, got {other}"),
    }
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "deadline rejection not bounded: {:?}",
        t0.elapsed()
    );
    assert_eq!(server.counters().rejected_deadline, 1);

    // The tenant's session was never created for the expired request…
    match c.stats().unwrap() {
        Response::Stats { tenants, .. } => assert!(tenants.is_empty()),
        other => panic!("unexpected {other:?}"),
    }
    // …and an unexpired request still works.
    let reply = c
        .derive_with_deadline(
            "hurry",
            EXPR,
            GRID,
            ExecStrategy::Fusion,
            false,
            Some(Duration::from_secs(30)),
        )
        .unwrap();
    assert_eq!(reply.ncells, 512);

    c.shutdown().unwrap();
    server.join().unwrap();
}

#[test]
fn server_default_deadline_applies_to_requests_without_one() {
    let config = ServeConfig {
        batch_window: Duration::from_millis(150),
        default_deadline: Some(Duration::from_millis(20)),
        ..ServeConfig::default()
    };
    let server = Server::start("127.0.0.1:0", config).unwrap();
    let mut c = Client::connect(&server.local_addr().to_string()).unwrap();

    let err = c
        .derive("t", EXPR, GRID, ExecStrategy::Fusion, false)
        .unwrap_err();
    match err {
        ClientError::Rejected { kind, .. } => assert_eq!(kind, RejectKind::DeadlineExceeded),
        other => panic!("expected deadline_exceeded, got {other}"),
    }

    c.shutdown().unwrap();
    server.join().unwrap();
}

#[test]
fn idle_ttl_evicts_sessions_and_releases_device_bytes() {
    let config = ServeConfig {
        idle_ttl: Some(Duration::from_millis(200)),
        ..ServeConfig::default()
    };
    let server = Server::start("127.0.0.1:0", config).unwrap();
    let mut c = Client::connect(&server.local_addr().to_string()).unwrap();

    for t in ["a", "b"] {
        c.derive(t, EXPR, GRID, ExecStrategy::Fusion, false)
            .unwrap();
    }
    match c.stats().unwrap() {
        Response::Stats { tenants, .. } => {
            assert_eq!(tenants.len(), 2);
            assert!(
                tenants.iter().any(|t| t.in_use_bytes > 0),
                "expected resident device bytes before eviction"
            );
        }
        other => panic!("unexpected {other:?}"),
    }

    // Poll until the maintenance tick evicts both idle sessions.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match c.stats().unwrap() {
            Response::Stats {
                server: counters,
                tenants,
                ..
            } => {
                if tenants.is_empty() {
                    assert_eq!(counters.evicted_idle, 2);
                    break;
                }
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(Instant::now() < deadline, "idle sessions never evicted");
        thread::sleep(Duration::from_millis(50));
    }

    // An evicted tenant is not banned — the next request rebuilds its
    // session from scratch.
    let reply = c
        .derive("a", EXPR, GRID, ExecStrategy::Fusion, false)
        .unwrap();
    assert_eq!(reply.compiles, 1, "fresh session should recompile");

    c.shutdown().unwrap();
    server.join().unwrap();
}

#[test]
fn memory_pressure_watchdog_trims_and_evicts_lru() {
    // A 1-byte threshold: any resident session is over it, so the first
    // maintenance tick after the derive must trim and evict.
    let config = ServeConfig {
        memory_pressure_bytes: Some(1),
        ..ServeConfig::default()
    };
    let server = Server::start("127.0.0.1:0", config).unwrap();
    let mut c = Client::connect(&server.local_addr().to_string()).unwrap();

    c.derive("heavy", EXPR, GRID, ExecStrategy::Fusion, false)
        .unwrap();

    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match c.stats().unwrap() {
            Response::Stats {
                server: counters,
                tenants,
                ..
            } => {
                if tenants.is_empty() {
                    assert!(counters.evicted_pressure >= 1);
                    break;
                }
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(
            Instant::now() < deadline,
            "pressure watchdog never evicted the session"
        );
        thread::sleep(Duration::from_millis(50));
    }

    c.shutdown().unwrap();
    server.join().unwrap();
}
