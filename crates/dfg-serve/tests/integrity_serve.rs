//! End-to-end payload-integrity tests: the reply checksum crosses the
//! wire, a garbled payload surfaces as the transient
//! [`ClientError::Corrupt`], and a [`RetryPolicy`] re-fetch gets clean
//! bits. Server-side, a registry running with verification enabled
//! reports its integrity counters through the stats endpoint.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use std::thread;
use std::time::Duration;

use dfg_ocl::integrity::{checksum_bits, PAYLOAD_SUM_SEED};
use dfg_ocl::VerifyPolicy;
use dfg_serve::{
    Client, ClientError, DeriveReply, ExecStrategy, Request, Response, RetryPolicy, ServeConfig,
    Server,
};

/// A minimal in-test server that answers derive requests with a fixed
/// payload, garbling the first `garble_first` replies *after* computing
/// the checksum over the clean bits — exactly what a transport-level bit
/// flip between server and client looks like.
fn garbling_server(bits: Vec<u32>, garble_first: usize) -> (String, thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let handle = thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        let mut served = 0usize;
        let mut line = String::new();
        loop {
            line.clear();
            if reader.read_line(&mut line).unwrap_or(0) == 0 {
                return;
            }
            let req = match Request::parse(line.trim()) {
                Ok(r) => r,
                Err(_) => continue,
            };
            match req {
                Request::Derive(d) => {
                    let sum = checksum_bits(PAYLOAD_SUM_SEED, &bits);
                    let mut sent = bits.clone();
                    if served < garble_first {
                        sent[0] ^= 1 << 7;
                    }
                    served += 1;
                    let resp = Response::Ok(DeriveReply {
                        id: d.id,
                        tenant: d.tenant.clone(),
                        expr: d.expr.clone(),
                        ncells: sent.len() as u64,
                        checksum: 0.0,
                        device_ms: 0.0,
                        wall_ms: 0.0,
                        compiles: 0,
                        coalesced: false,
                        batch: 1,
                        degraded: false,
                        data_bits: Some(sent),
                        payload_sum: Some(sum),
                    });
                    writer.write_all(resp.to_json_line().as_bytes()).unwrap();
                }
                Request::Shutdown { id } => {
                    let resp = Response::ShuttingDown { id };
                    writer.write_all(resp.to_json_line().as_bytes()).unwrap();
                    return;
                }
                _ => {}
            }
        }
    });
    (addr, handle)
}

#[test]
fn garbled_reply_is_corrupt_and_a_retry_refetches_clean_bits() {
    let bits: Vec<u32> = (0..64u32).map(|i| (1.0f32 + i as f32).to_bits()).collect();
    let (addr, handle) = garbling_server(bits.clone(), 1);
    let mut client = Client::connect(&addr).unwrap();

    // First fetch sees the flipped bit as a typed, transient corruption.
    let err = client
        .derive("t", "m = u", [4, 4, 4], ExecStrategy::Fusion, true)
        .unwrap_err();
    match &err {
        ClientError::Corrupt {
            expected, actual, ..
        } => assert_ne!(expected, actual),
        other => panic!("expected Corrupt, got {other:?}"),
    }
    assert!(err.is_transient(), "corruption must be retryable");

    // The same request through a RetryPolicy heals by re-fetching.
    let mut policy = RetryPolicy::new(2, Duration::from_micros(10), Duration::from_micros(100), 42);
    let reply = policy
        .retry(|| client.derive("t", "m = u", [4, 4, 4], ExecStrategy::Fusion, true))
        .unwrap();
    assert_eq!(
        reply.data_bits.as_deref(),
        Some(&bits[..]),
        "re-fetched payload is bit-identical to the clean field"
    );
    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn real_server_attaches_payload_sum_and_reports_integrity_counters() {
    let mut cfg = ServeConfig::default();
    cfg.options.verify = VerifyPolicy::Full;
    let server = Server::start("127.0.0.1:0", cfg).unwrap();
    let mut client = Client::connect(&server.local_addr().to_string()).unwrap();

    // Two cycles on one tenant: the second skips resident re-uploads,
    // which under `Full` verification revalidates each resident first.
    let r1 = client
        .derive("t", "m = u*v", [8, 8, 8], ExecStrategy::Fusion, true)
        .unwrap();
    let r2 = client
        .derive("t", "m = u*v", [8, 8, 8], ExecStrategy::Fusion, true)
        .unwrap();
    assert!(r1.payload_sum.is_some(), "data replies carry a checksum");
    assert_eq!(r1.data_bits, r2.data_bits);
    assert_eq!(r1.payload_sum, r2.payload_sum);

    // A reply without data carries no checksum.
    let bare = client
        .derive("t", "m = u*v", [8, 8, 8], ExecStrategy::Fusion, false)
        .unwrap();
    assert!(bare.data_bits.is_none());
    assert!(bare.payload_sum.is_none());

    match client.stats().unwrap() {
        Response::Stats { tenants, .. } => {
            let t = tenants.iter().find(|t| t.tenant == "t").unwrap();
            assert!(
                t.integrity_checks > 0,
                "verification ran under VerifyPolicy::Full"
            );
            assert_eq!(t.integrity_violations, 0, "no faults injected");
        }
        other => panic!("unexpected {other:?}"),
    }

    client.shutdown().unwrap();
    server.join().unwrap();
}
