//! End-to-end serve tests: concurrent tenancy, quotas, coalescing,
//! admission control, clean shutdown.

use std::thread;
use std::time::Duration;

use dfg_core::{Engine, EngineOptions, FieldSet, RecoveryPolicy, Strategy};
use dfg_mesh::{RectilinearMesh, RtWorkload};
use dfg_ocl::DeviceProfile;
use dfg_serve::{Client, DeriveRequest, ExecStrategy, Request, Response, ServeConfig, Server};

const EXPR: &str = "vmag = sqrt(u*u + v*v + w*w)";
const GRID: [usize; 3] = [8, 8, 8];

/// Bits of a local, sequential, single-tenant engine run — the reference
/// the server must match exactly.
fn local_bits(expr: &str, grid: [usize; 3]) -> Vec<u32> {
    let mesh = RectilinearMesh::unit_cube(grid);
    let fields = FieldSet::for_rt_mesh(&mesh, &RtWorkload::paper_default());
    let mut engine = Engine::new(DeviceProfile::intel_x5660());
    let report = engine.derive(expr, &fields, Strategy::Fusion).unwrap();
    report
        .field
        .unwrap()
        .data
        .iter()
        .map(|f| f.to_bits())
        .collect()
}

#[test]
fn concurrent_tenants_match_sequential_single_tenant_bits() {
    let server = Server::start("127.0.0.1:0", ServeConfig::default()).unwrap();
    let addr = server.local_addr().to_string();
    let want = local_bits(EXPR, GRID);

    let n_clients = 4;
    let m_cycles = 3;
    let mut handles = Vec::new();
    for t in 0..n_clients {
        let addr = addr.clone();
        let want = want.clone();
        handles.push(thread::spawn(move || {
            let mut client = Client::connect(&addr).unwrap();
            let tenant = format!("tenant-{t}");
            for _ in 0..m_cycles {
                let reply = client
                    .derive(&tenant, EXPR, GRID, ExecStrategy::Fusion, true)
                    .unwrap();
                assert_eq!(
                    reply.data_bits.as_deref(),
                    Some(&want[..]),
                    "{tenant}: serve bits differ from local sequential run"
                );
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    let counters = server.counters();
    assert_eq!(counters.ok, (n_clients * m_cycles) as u64);
    assert_eq!(counters.errors, 0);
    server.shutdown();
    server.join().unwrap();
}

#[test]
fn coalescing_reduces_compiles_and_preserves_bits() {
    let run = |coalesce: bool| {
        let config = ServeConfig {
            coalesce,
            batch_window: Duration::from_millis(50),
            ..ServeConfig::default()
        };
        let server = Server::start("127.0.0.1:0", config).unwrap();
        let mut client = Client::connect(&server.local_addr().to_string()).unwrap();
        // Pipeline one identical request per tenant so they land inside
        // one batch window.
        let n_tenants = 4;
        let mut ids = Vec::new();
        for t in 0..n_tenants {
            let id = client
                .send(Request::Derive(DeriveRequest {
                    id: 0,
                    tenant: format!("t{t}"),
                    expr: EXPR.into(),
                    grid: GRID,
                    strategy: ExecStrategy::Fusion,
                    data: true,
                    deadline_ms: None,
                }))
                .unwrap();
            ids.push(id);
        }
        let mut bits = Vec::new();
        let mut total_compiles = 0u64;
        let mut coalesced_replies = 0u64;
        for id in ids {
            match client.recv_for(id).unwrap() {
                Response::Ok(r) => {
                    bits.push(r.data_bits.expect("data requested"));
                    total_compiles += r.compiles;
                    if r.coalesced {
                        coalesced_replies += 1;
                    }
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        client.shutdown().unwrap();
        server.join().unwrap();
        (bits, total_compiles, coalesced_replies)
    };

    let (bits_on, compiles_on, coalesced_on) = run(true);
    let (bits_off, compiles_off, coalesced_off) = run(false);

    assert_eq!(
        bits_on, bits_off,
        "coalesced output differs from uncoalesced"
    );
    let want = local_bits(EXPR, GRID);
    for b in &bits_on {
        assert_eq!(b, &want, "serve bits differ from local run");
    }
    assert!(
        compiles_on < compiles_off,
        "coalescing did not reduce compiles: {compiles_on} vs {compiles_off}"
    );
    assert_eq!(compiles_off, 4, "uncoalesced: one compile per tenant");
    assert!(coalesced_on > 0, "no request was actually coalesced");
    assert_eq!(coalesced_off, 0);
}

#[test]
fn commutative_variants_coalesce_via_canonical_hash() {
    // `u*u + v*v` and `v*v + u*u` parse to different node orders but the
    // same canonical post-optimization network, so the batcher must treat
    // them as one group and compile/execute once.
    let exprs = ["s = u*u + v*v", "s = v*v + u*u"];
    let config = ServeConfig {
        coalesce: true,
        batch_window: Duration::from_millis(50),
        ..ServeConfig::default()
    };
    let server = Server::start("127.0.0.1:0", config).unwrap();
    let mut client = Client::connect(&server.local_addr().to_string()).unwrap();

    let mut ids = Vec::new();
    for (t, expr) in exprs.iter().enumerate() {
        let id = client
            .send(Request::Derive(DeriveRequest {
                id: 0,
                tenant: format!("t{t}"),
                expr: (*expr).into(),
                grid: GRID,
                strategy: ExecStrategy::Fusion,
                data: true,
                deadline_ms: None,
            }))
            .unwrap();
        ids.push(id);
    }
    let mut bits = Vec::new();
    let mut compiles = 0u64;
    let mut coalesced = 0u64;
    for id in ids {
        match client.recv_for(id).unwrap() {
            Response::Ok(r) => {
                bits.push(r.data_bits.expect("data requested"));
                compiles += r.compiles;
                if r.coalesced {
                    coalesced += 1;
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }
    client.shutdown().unwrap();
    server.join().unwrap();

    assert_eq!(coalesced, 1, "the commutative variant did not coalesce");
    assert_eq!(compiles, 1, "expected one compile for both variants");
    // Both tenants get the leader's bits, which match a local run of either
    // spelling: float addition/multiplication are commutative bit-exactly.
    let want = local_bits(exprs[0], GRID);
    assert_eq!(bits[0], want);
    assert_eq!(bits[1], want);
    assert_eq!(local_bits(exprs[1], GRID), want);
}

#[test]
fn cross_fusion_merges_overlapping_expressions() {
    // Four tenants, four *distinct* expressions sharing the `u*u+v*v+w*w`
    // subgraph. With cross-request fusion on, the batch compiles and runs as
    // one merged multi-output network; every tenant still gets bits
    // identical to an unbatched run of its own expression.
    let exprs = [
        "vmag = sqrt(u*u + v*v + w*w)",
        "ke = 0.5 * (u*u + v*v + w*w)",
        "s = u*u + v*v + w*w",
        "sp = (u*u + v*v + w*w) + 1",
    ];
    let config = ServeConfig {
        coalesce: true,
        cross_fusion: true,
        batch_window: Duration::from_millis(80),
        ..ServeConfig::default()
    };
    let server = Server::start("127.0.0.1:0", config).unwrap();
    let mut client = Client::connect(&server.local_addr().to_string()).unwrap();

    let mut ids = Vec::new();
    for (t, expr) in exprs.iter().enumerate() {
        let id = client
            .send(Request::Derive(DeriveRequest {
                id: 0,
                tenant: format!("t{t}"),
                expr: (*expr).into(),
                grid: GRID,
                strategy: ExecStrategy::Fusion,
                data: true,
                deadline_ms: None,
            }))
            .unwrap();
        ids.push(id);
    }
    let mut bits = Vec::new();
    let mut compiles = 0u64;
    for id in ids {
        match client.recv_for(id).unwrap() {
            Response::Ok(r) => {
                bits.push(r.data_bits.expect("data requested"));
                compiles += r.compiles;
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    // Per-tenant outputs are bit-identical to unbatched single-tenant runs.
    for (expr, got) in exprs.iter().zip(&bits) {
        assert_eq!(
            got,
            &local_bits(expr, GRID),
            "merged output for `{expr}` differs from unbatched run"
        );
    }
    // The whole overlapping batch cost one codegen compile.
    assert_eq!(compiles, 1, "expected one compile for the merged batch");

    match client.stats().unwrap() {
        Response::Stats {
            server: counters,
            tenants,
            ..
        } => {
            assert_eq!(counters.merged, 4, "all four requests should merge");
            assert_eq!(counters.ok, 4);
            for t in &tenants {
                assert_eq!(t.session.merged, 1, "{}: missing merged count", t.tenant);
            }
            let saved: u64 = tenants.iter().map(|t| t.session.opt_saved_kernels).sum();
            assert!(
                saved > 0,
                "cross-request CSE should report eliminated kernels"
            );
        }
        other => panic!("unexpected {other:?}"),
    }

    client.shutdown().unwrap();
    server.join().unwrap();
}

#[test]
fn quota_exceeded_is_typed_and_leaks_nothing() {
    let config = ServeConfig {
        options: EngineOptions {
            recovery: RecoveryPolicy::disabled(),
            ..EngineOptions::default()
        },
        quotas: vec![("tiny".to_string(), 64 * 1024)],
        ..ServeConfig::default()
    };
    let server = Server::start("127.0.0.1:0", config).unwrap();
    let mut client = Client::connect(&server.local_addr().to_string()).unwrap();

    // 32^3 cells = 128 KiB per lane: cannot fit a 64 KiB quota.
    let err = client
        .derive("tiny", EXPR, [32, 32, 32], ExecStrategy::Fusion, false)
        .unwrap_err();
    assert!(
        err.to_string().contains("quota_exceeded"),
        "expected quota_exceeded, got: {err}"
    );

    match client.stats().unwrap() {
        Response::Stats {
            server: counters,
            tenants,
            ..
        } => {
            assert_eq!(counters.rejected_quota, 1);
            assert_eq!(counters.ok, 0);
            let tiny = tenants.iter().find(|t| t.tenant == "tiny").unwrap();
            assert_eq!(tiny.in_use_bytes, 0, "failed request leaked device bytes");
            assert_eq!(tiny.quota_bytes, 64 * 1024);
        }
        other => panic!("unexpected {other:?}"),
    }

    // The tenant still works for requests that fit its quota.
    let reply = client
        .derive("tiny", EXPR, [4, 4, 4], ExecStrategy::Fusion, true)
        .unwrap();
    assert_eq!(
        reply.data_bits.as_deref(),
        Some(&local_bits(EXPR, [4, 4, 4])[..])
    );

    client.shutdown().unwrap();
    server.join().unwrap();
}

#[test]
fn quota_pressure_degrades_gracefully_with_recovery_on() {
    let config = ServeConfig {
        quotas: vec![("tiny".to_string(), 64 * 1024)],
        ..ServeConfig::default() // resilient recovery by default
    };
    let server = Server::start("127.0.0.1:0", config).unwrap();
    let mut client = Client::connect(&server.local_addr().to_string()).unwrap();

    let reply = client
        .derive("tiny", EXPR, [32, 32, 32], ExecStrategy::Fusion, false)
        .unwrap();
    assert!(reply.degraded, "expected a degraded completion under quota");
    assert_eq!(server.counters().degraded, 1);

    client.shutdown().unwrap();
    server.join().unwrap();
}

#[test]
fn full_queue_rejects_with_overloaded() {
    let config = ServeConfig {
        queue_capacity: 1,
        batch_window: Duration::from_millis(200),
        ..ServeConfig::default()
    };
    let server = Server::start("127.0.0.1:0", config).unwrap();
    let mut client = Client::connect(&server.local_addr().to_string()).unwrap();

    let k = 8;
    let mut ids = Vec::new();
    for i in 0..k {
        ids.push(
            client
                .send(Request::Derive(DeriveRequest {
                    id: 0,
                    tenant: format!("t{i}"),
                    expr: EXPR.into(),
                    grid: GRID,
                    strategy: ExecStrategy::Fusion,
                    data: false,
                    deadline_ms: None,
                }))
                .unwrap(),
        );
    }
    let mut ok = 0;
    let mut overloaded = 0;
    for id in ids {
        match client.recv_for(id).unwrap() {
            Response::Ok(_) => ok += 1,
            Response::Rejected { .. } => overloaded += 1,
            other => panic!("unexpected {other:?}"),
        }
    }
    assert_eq!(ok + overloaded, k);
    assert!(ok >= 1, "no request was admitted");
    assert!(overloaded >= 1, "queue bound never tripped");
    assert_eq!(server.counters().rejected_overload, overloaded as u64);

    client.shutdown().unwrap();
    server.join().unwrap();
}

#[test]
fn shutdown_drains_and_joins_cleanly() {
    let server = Server::start("127.0.0.1:0", ServeConfig::default()).unwrap();
    let addr = server.local_addr().to_string();

    let mut client = Client::connect(&addr).unwrap();
    client
        .derive("t", EXPR, GRID, ExecStrategy::Fusion, false)
        .unwrap();
    client.shutdown().unwrap();
    let counters = server.join().unwrap();
    assert_eq!(counters.ok, 1);

    // The socket no longer accepts work.
    assert!(
        Client::connect(&addr).is_err() || {
            let mut c = Client::connect(&addr).unwrap();
            c.ping().is_err()
        }
    );
}
