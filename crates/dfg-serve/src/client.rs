//! A blocking client for the serve protocol.
//!
//! One [`Client`] wraps one TCP connection. The simple path is the
//! call-and-wait helpers ([`Client::derive`], [`Client::stats`],
//! [`Client::ping`]); the pipelined path is [`Client::send`] /
//! [`Client::recv_for`], which lets a load generator keep many requests
//! in flight on one connection and match replies by id.
//!
//! Failures are **typed**: a refused request surfaces as
//! [`ClientError::Rejected`] carrying the server's [`RejectKind`], so
//! callers can branch on `overloaded` vs `deadline_exceeded` vs
//! `quota_exceeded` instead of string-matching. Transient failures
//! ([`ClientError::is_transient`]) compose with [`RetryPolicy`] — a
//! seeded exponential-backoff loop whose jitter is reproducible, in the
//! same spirit as the engine's deterministic recovery ladder.
//!
//! # Examples
//!
//! ```
//! use dfg_serve::{Client, ExecStrategy, ServeConfig, Server};
//!
//! let server = Server::start("127.0.0.1:0", ServeConfig::default()).unwrap();
//! let mut client = Client::connect(&server.local_addr().to_string()).unwrap();
//!
//! client.ping().unwrap();
//! let reply = client
//!     .derive("bob", "m = u*v", [4, 4, 4], ExecStrategy::Fusion, true)
//!     .unwrap();
//! assert_eq!(reply.data_bits.as_ref().unwrap().len(), 64);
//!
//! client.shutdown().unwrap();
//! server.join().unwrap();
//! ```

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use crate::protocol::{DeriveReply, DeriveRequest, ExecStrategy, RejectKind, Request, Response};

/// A blocking connection to a serve instance.
pub struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
    next_id: u64,
    /// Replies read while waiting for a different id (pipelining).
    pending: HashMap<u64, Response>,
}

/// Client-side failure: transport error, typed server rejection, or a
/// protocol-level parse error.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The server refused the request with a typed rejection.
    Rejected {
        /// Why the server refused (`overloaded`, `deadline_exceeded`,
        /// `too_large`, `quota_exceeded`, ...).
        kind: RejectKind,
        /// The server's human-readable explanation.
        message: String,
    },
    /// The server's reply did not parse, or was of an unexpected shape.
    Protocol(String),
    /// The reply parsed but its payload failed the checksum the server
    /// attached (`payload_sum`): the bits were garbled in flight. The
    /// request itself is fine, so this is transient — a [`RetryPolicy`]
    /// re-fetch gets a clean copy.
    Corrupt {
        /// Request id of the corrupted reply.
        id: u64,
        /// Checksum the server computed over the payload it sent.
        expected: u64,
        /// Checksum of the payload as received.
        actual: u64,
    },
}

impl ClientError {
    /// Whether retrying the same request may succeed: connection faults,
    /// `overloaded` rejections, and corrupted payloads are transient;
    /// deadline, size, quota, and malformed-request failures are not (the
    /// request itself is the problem).
    pub fn is_transient(&self) -> bool {
        match self {
            ClientError::Io(_) => true,
            ClientError::Rejected { kind, .. } => matches!(kind, RejectKind::Overloaded),
            ClientError::Protocol(_) => false,
            ClientError::Corrupt { .. } => true,
        }
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Rejected { kind, message } => {
                write!(f, "{}: {message}", kind.as_str())
            }
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Corrupt {
                id,
                expected,
                actual,
            } => write!(
                f,
                "corrupt payload in reply {id}: checksum {actual:#018x} != expected {expected:#018x}"
            ),
        }
    }
}

/// Verify a reply's payload against the checksum the server attached.
///
/// Returns [`ClientError::Corrupt`] when `data_bits` and `payload_sum` are
/// both present and disagree. A reply without a payload — or from a server
/// that attached no checksum — has nothing to verify and passes. Called
/// automatically by [`Client::derive`] / [`Client::derive_with_deadline`];
/// exposed for callers that drive the pipelined [`Client::send`] /
/// [`Client::recv_for`] path themselves.
pub fn verify_payload(reply: &DeriveReply) -> Result<(), ClientError> {
    if let (Some(bits), Some(expected)) = (&reply.data_bits, reply.payload_sum) {
        let actual = dfg_ocl::integrity::checksum_bits(dfg_ocl::integrity::PAYLOAD_SUM_SEED, bits);
        if actual != expected {
            return Err(ClientError::Corrupt {
                id: reply.id,
                expected,
                actual,
            });
        }
    }
    Ok(())
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Seeded exponential backoff for transient failures.
///
/// The jitter stream is a xorshift PRNG keyed by `seed`, so a retry
/// schedule — like everything else in this codebase's failure tooling —
/// is reproducible: the same seed and failure sequence sleep for the
/// same durations.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Attempts beyond the first (0 = no retries).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per retry.
    pub base_delay: Duration,
    /// Ceiling on any single backoff sleep.
    pub max_delay: Duration,
    state: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::new(3, Duration::from_millis(10), Duration::from_millis(500), 1)
    }
}

impl RetryPolicy {
    /// A policy with explicit bounds and jitter seed.
    pub fn new(max_retries: u32, base_delay: Duration, max_delay: Duration, seed: u64) -> Self {
        RetryPolicy {
            max_retries,
            base_delay,
            max_delay,
            // xorshift must not start at 0; fold the seed to non-zero.
            state: seed | 1,
        }
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }

    /// The backoff before retry number `attempt` (0-based): exponential
    /// `base * 2^attempt` capped at `max_delay`, scaled by a jitter factor
    /// drawn uniformly from `[0.5, 1.0]`.
    pub fn backoff(&mut self, attempt: u32) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.max_delay);
        let jitter = 0.5 + (self.next_u64() % 1000) as f64 / 2000.0;
        exp.mul_f64(jitter)
    }

    /// Run `op` until it succeeds, exhausts the retry budget, or fails
    /// non-transiently. Each retry reconnects from scratch via `op` (the
    /// closure owns connection setup), sleeping the seeded backoff first.
    pub fn retry<T>(
        &mut self,
        mut op: impl FnMut() -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let mut attempt = 0u32;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if e.is_transient() && attempt < self.max_retries => {
                    std::thread::sleep(self.backoff(attempt));
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

impl Client {
    /// Connect to `addr` (e.g. `"127.0.0.1:49152"`).
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            stream,
            reader,
            next_id: 1,
            pending: HashMap::new(),
        })
    }

    /// Bound how long [`Client::recv`] blocks on the socket. A timed-out
    /// read surfaces as [`ClientError::Io`] (`WouldBlock`/`TimedOut`),
    /// which [`ClientError::is_transient`] classifies as retryable.
    pub fn set_read_timeout(&self, dur: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(dur)
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Send a raw request without waiting; returns the id to pass to
    /// [`Client::recv_for`]. The id inside `req` is overwritten with a
    /// fresh one so pipelined replies stay matchable.
    pub fn send(&mut self, mut req: Request) -> Result<u64, ClientError> {
        let id = self.fresh_id();
        match &mut req {
            Request::Derive(d) => d.id = id,
            Request::Stats { id: slot }
            | Request::Ping { id: slot }
            | Request::Shutdown { id: slot } => *slot = id,
        }
        self.stream.write_all(req.to_json_line().as_bytes())?;
        self.stream.flush()?;
        Ok(id)
    }

    /// Read the next reply off the wire, whatever its id.
    pub fn recv(&mut self) -> Result<Response, ClientError> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ClientError::Protocol("server closed the connection".into()));
        }
        Response::parse(line.trim()).map_err(ClientError::Protocol)
    }

    /// Read replies until the one for `id` arrives, stashing replies to
    /// other in-flight requests for their own `recv_for` calls.
    pub fn recv_for(&mut self, id: u64) -> Result<Response, ClientError> {
        if let Some(resp) = self.pending.remove(&id) {
            return Ok(resp);
        }
        loop {
            let resp = self.recv()?;
            let got = response_id(&resp);
            if got == id {
                return Ok(resp);
            }
            self.pending.insert(got, resp);
        }
    }

    /// Send one request and wait for its reply.
    pub fn request(&mut self, req: Request) -> Result<Response, ClientError> {
        let id = self.send(req)?;
        self.recv_for(id)
    }

    /// Derive a field and wait. Rejections become the typed
    /// [`ClientError::Rejected`]; execution errors become
    /// [`ClientError::Protocol`].
    pub fn derive(
        &mut self,
        tenant: &str,
        expr: &str,
        grid: [usize; 3],
        strategy: ExecStrategy,
        data: bool,
    ) -> Result<DeriveReply, ClientError> {
        self.derive_with_deadline(tenant, expr, grid, strategy, data, None)
    }

    /// [`Client::derive`] with a per-request deadline: the server rejects
    /// the request with `deadline_exceeded` once `deadline` elapses,
    /// whether it is still queued or mid-execution.
    pub fn derive_with_deadline(
        &mut self,
        tenant: &str,
        expr: &str,
        grid: [usize; 3],
        strategy: ExecStrategy,
        data: bool,
        deadline: Option<Duration>,
    ) -> Result<DeriveReply, ClientError> {
        let resp = self.request(Request::Derive(DeriveRequest {
            id: 0,
            tenant: tenant.to_string(),
            expr: expr.to_string(),
            grid,
            strategy,
            data,
            deadline_ms: deadline.map(|d| d.as_millis() as u64),
        }))?;
        match resp {
            Response::Ok(reply) => {
                verify_payload(&reply)?;
                Ok(reply)
            }
            Response::Rejected { kind, message, .. } => {
                Err(ClientError::Rejected { kind, message })
            }
            Response::Error { message, .. } => Err(ClientError::Protocol(message)),
            other => Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Fetch server counters and per-tenant stats.
    pub fn stats(&mut self) -> Result<Response, ClientError> {
        let resp = self.request(Request::Stats { id: 0 })?;
        match resp {
            Response::Stats { .. } => Ok(resp),
            other => Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.request(Request::Ping { id: 0 })? {
            Response::Pong { .. } => Ok(()),
            other => Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Ask the server to drain and exit; returns once acknowledged.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.request(Request::Shutdown { id: 0 })? {
            Response::ShuttingDown { .. } | Response::Rejected { .. } => Ok(()),
            other => Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }
}

fn response_id(resp: &Response) -> u64 {
    match resp {
        Response::Ok(r) => r.id,
        Response::Pong { id }
        | Response::Stats { id, .. }
        | Response::ShuttingDown { id }
        | Response::Rejected { id, .. }
        | Response::Error { id, .. } => *id,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_classification_matches_reject_kinds() {
        let io = ClientError::Io(std::io::Error::new(
            std::io::ErrorKind::ConnectionReset,
            "boom",
        ));
        assert!(io.is_transient());
        let overloaded = ClientError::Rejected {
            kind: RejectKind::Overloaded,
            message: "queue full".into(),
        };
        assert!(overloaded.is_transient());
        for kind in [
            RejectKind::DeadlineExceeded,
            RejectKind::TooLarge,
            RejectKind::QuotaExceeded,
            RejectKind::ShuttingDown,
        ] {
            let e = ClientError::Rejected {
                kind,
                message: "no".into(),
            };
            assert!(!e.is_transient(), "{e} must not be transient");
        }
        assert!(!ClientError::Protocol("garbled".into()).is_transient());
        let corrupt = ClientError::Corrupt {
            id: 1,
            expected: 2,
            actual: 3,
        };
        assert!(
            corrupt.is_transient(),
            "a garbled payload is transient: a re-fetch gets clean bits"
        );
    }

    #[test]
    fn verify_payload_catches_a_single_garbled_bit() {
        let bits: Vec<u32> = [1.0f32, 2.0, 3.0].iter().map(|f| f.to_bits()).collect();
        let sum = dfg_ocl::integrity::checksum_bits(dfg_ocl::integrity::PAYLOAD_SUM_SEED, &bits);
        let mut reply = DeriveReply {
            id: 7,
            tenant: "a".into(),
            expr: "m = u".into(),
            ncells: 3,
            checksum: 6.0,
            device_ms: 0.0,
            wall_ms: 0.0,
            compiles: 0,
            coalesced: false,
            batch: 1,
            degraded: false,
            data_bits: Some(bits),
            payload_sum: Some(sum),
        };
        assert!(verify_payload(&reply).is_ok());
        reply.data_bits.as_mut().unwrap()[1] ^= 1 << 19;
        match verify_payload(&reply) {
            Err(ClientError::Corrupt { id: 7, .. }) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
        // No payload, or no server-side sum: nothing to verify.
        reply.payload_sum = None;
        assert!(verify_payload(&reply).is_ok());
        reply.data_bits = None;
        assert!(verify_payload(&reply).is_ok());
    }

    #[test]
    fn rejected_display_keeps_the_wire_status_prefix() {
        let e = ClientError::Rejected {
            kind: RejectKind::QuotaExceeded,
            message: "tenant over budget".into(),
        };
        assert_eq!(e.to_string(), "quota_exceeded: tenant over budget");
    }

    #[test]
    fn backoff_is_seed_stable_and_bounded() {
        let schedule = |seed: u64| -> Vec<Duration> {
            let mut p = RetryPolicy::new(
                5,
                Duration::from_millis(10),
                Duration::from_millis(100),
                seed,
            );
            (0..5).map(|a| p.backoff(a)).collect()
        };
        assert_eq!(schedule(7), schedule(7), "same seed, same jitter");
        assert_ne!(schedule(7), schedule(8), "different seeds differ");
        let mut p = RetryPolicy::new(5, Duration::from_millis(10), Duration::from_millis(100), 7);
        for a in 0..8 {
            let b = p.backoff(a);
            assert!(
                b <= Duration::from_millis(100),
                "capped at max_delay: {b:?}"
            );
            assert!(b >= Duration::from_millis(5), "at least half the base");
        }
    }

    #[test]
    fn retry_stops_on_non_transient_and_counts_attempts() {
        let mut p = RetryPolicy::new(3, Duration::from_micros(1), Duration::from_micros(2), 1);
        let mut calls = 0u32;
        let out: Result<(), _> = p.retry(|| {
            calls += 1;
            Err(ClientError::Rejected {
                kind: RejectKind::TooLarge,
                message: "frame".into(),
            })
        });
        assert!(out.is_err());
        assert_eq!(calls, 1, "non-transient fails immediately");

        let mut p = RetryPolicy::new(3, Duration::from_micros(1), Duration::from_micros(2), 1);
        let mut calls = 0u32;
        let out = p.retry(|| {
            calls += 1;
            if calls < 3 {
                Err(ClientError::Rejected {
                    kind: RejectKind::Overloaded,
                    message: "busy".into(),
                })
            } else {
                Ok(calls)
            }
        });
        assert_eq!(out.unwrap(), 3, "transient retried until success");
    }
}
