//! A blocking client for the serve protocol.
//!
//! One [`Client`] wraps one TCP connection. The simple path is the
//! call-and-wait helpers ([`Client::derive`], [`Client::stats`],
//! [`Client::ping`]); the pipelined path is [`Client::send`] /
//! [`Client::recv_for`], which lets a load generator keep many requests
//! in flight on one connection and match replies by id.
//!
//! # Examples
//!
//! ```
//! use dfg_serve::{Client, ExecStrategy, ServeConfig, Server};
//!
//! let server = Server::start("127.0.0.1:0", ServeConfig::default()).unwrap();
//! let mut client = Client::connect(&server.local_addr().to_string()).unwrap();
//!
//! client.ping().unwrap();
//! let reply = client
//!     .derive("bob", "m = u*v", [4, 4, 4], ExecStrategy::Fusion, true)
//!     .unwrap();
//! assert_eq!(reply.data_bits.as_ref().unwrap().len(), 64);
//!
//! client.shutdown().unwrap();
//! server.join().unwrap();
//! ```

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use crate::protocol::{DeriveReply, DeriveRequest, ExecStrategy, Request, Response};

/// A blocking connection to a serve instance.
pub struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
    next_id: u64,
    /// Replies read while waiting for a different id (pipelining).
    pending: HashMap<u64, Response>,
}

/// Client-side failure: transport error or a protocol-level parse error.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The server's reply did not parse, or the request was refused.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl Client {
    /// Connect to `addr` (e.g. `"127.0.0.1:49152"`).
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            stream,
            reader,
            next_id: 1,
            pending: HashMap::new(),
        })
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Send a raw request without waiting; returns the id to pass to
    /// [`Client::recv_for`]. The id inside `req` is overwritten with a
    /// fresh one so pipelined replies stay matchable.
    pub fn send(&mut self, mut req: Request) -> Result<u64, ClientError> {
        let id = self.fresh_id();
        match &mut req {
            Request::Derive(d) => d.id = id,
            Request::Stats { id: slot }
            | Request::Ping { id: slot }
            | Request::Shutdown { id: slot } => *slot = id,
        }
        self.stream.write_all(req.to_json_line().as_bytes())?;
        self.stream.flush()?;
        Ok(id)
    }

    /// Read the next reply off the wire, whatever its id.
    pub fn recv(&mut self) -> Result<Response, ClientError> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ClientError::Protocol("server closed the connection".into()));
        }
        Response::parse(line.trim()).map_err(ClientError::Protocol)
    }

    /// Read replies until the one for `id` arrives, stashing replies to
    /// other in-flight requests for their own `recv_for` calls.
    pub fn recv_for(&mut self, id: u64) -> Result<Response, ClientError> {
        if let Some(resp) = self.pending.remove(&id) {
            return Ok(resp);
        }
        loop {
            let resp = self.recv()?;
            let got = response_id(&resp);
            if got == id {
                return Ok(resp);
            }
            self.pending.insert(got, resp);
        }
    }

    /// Send one request and wait for its reply.
    pub fn request(&mut self, req: Request) -> Result<Response, ClientError> {
        let id = self.send(req)?;
        self.recv_for(id)
    }

    /// Derive a field and wait; non-`ok` statuses become
    /// [`ClientError::Protocol`] carrying the status + message.
    pub fn derive(
        &mut self,
        tenant: &str,
        expr: &str,
        grid: [usize; 3],
        strategy: ExecStrategy,
        data: bool,
    ) -> Result<DeriveReply, ClientError> {
        let resp = self.request(Request::Derive(DeriveRequest {
            id: 0,
            tenant: tenant.to_string(),
            expr: expr.to_string(),
            grid,
            strategy,
            data,
        }))?;
        match resp {
            Response::Ok(reply) => Ok(reply),
            Response::Rejected { kind, message, .. } => Err(ClientError::Protocol(format!(
                "{}: {message}",
                kind.as_str()
            ))),
            Response::Error { message, .. } => Err(ClientError::Protocol(message)),
            other => Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Fetch server counters and per-tenant stats.
    pub fn stats(&mut self) -> Result<Response, ClientError> {
        let resp = self.request(Request::Stats { id: 0 })?;
        match resp {
            Response::Stats { .. } => Ok(resp),
            other => Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.request(Request::Ping { id: 0 })? {
            Response::Pong { .. } => Ok(()),
            other => Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Ask the server to drain and exit; returns once acknowledged.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.request(Request::Shutdown { id: 0 })? {
            Response::ShuttingDown { .. } | Response::Rejected { .. } => Ok(()),
            other => Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }
}

fn response_id(resp: &Response) -> u64 {
    match resp {
        Response::Ok(r) => r.id,
        Response::Pong { id }
        | Response::Stats { id, .. }
        | Response::ShuttingDown { id }
        | Response::Rejected { id, .. }
        | Response::Error { id, .. } => *id,
    }
}
