//! # dfg-serve — the multi-tenant derived-field service
//!
//! Promotes the engine from a library into a long-lived server: many
//! concurrent clients connect over a local TCP socket, speak a
//! line-delimited JSON protocol ([`protocol`]), and are multiplexed onto
//! per-tenant [`dfg_core::Session`]s held in one
//! [`dfg_core::SessionRegistry`]. The serving layer adds what a library
//! cannot: admission control (a bounded queue with typed `overloaded`
//! rejections), per-tenant device-memory quotas riding the existing pool
//! accounting, request **coalescing** (structurally identical requests in
//! a batch window share one compiled kernel and one execution across
//! tenants), and graceful degradation through the engine's
//! [`dfg_core::RecoveryPolicy`].
//!
//! The operator-facing reference — protocol grammar, tenancy and quota
//! model, coalescing rules, overload behavior — is `docs/SERVING.md`; its
//! examples compile as doctests of this crate. Start here:
//!
//! ```
//! use dfg_serve::{Client, ExecStrategy, ServeConfig, Server};
//!
//! // In production: `dfgc serve --addr 127.0.0.1:7117`.
//! let server = Server::start("127.0.0.1:0", ServeConfig::default()).unwrap();
//! let addr = server.local_addr().to_string();
//!
//! // Two tenants, one connection each.
//! let mut a = Client::connect(&addr).unwrap();
//! let mut b = Client::connect(&addr).unwrap();
//! let ra = a.derive("a", "m = u*v", [8, 8, 8], ExecStrategy::Fusion, true).unwrap();
//! let rb = b.derive("b", "m = u*v", [8, 8, 8], ExecStrategy::Fusion, true).unwrap();
//! assert_eq!(ra.data_bits, rb.data_bits, "same request, bit-identical reply");
//!
//! a.shutdown().unwrap();
//! server.join().unwrap();
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod faulty;
pub mod protocol;
pub mod server;

pub use client::{verify_payload, Client, ClientError, RetryPolicy};
pub use faulty::FaultyStream;
pub use protocol::{
    DeriveReply, DeriveRequest, ExecStrategy, RejectKind, Request, Response, ServerCounters,
};
pub use server::{ServeConfig, Server};

// Compile the Rust examples in the serving architecture document as
// doctests, so `docs/SERVING.md` cannot drift from the real API.
#[doc = include_str!("../../../docs/SERVING.md")]
mod _serving_doc {}
