//! Deterministic connection-fault injection: a [`FaultyStream`] wrapper
//! that consumes the `conn_drop` / `conn_stall` / `byte_garble` kinds of a
//! [`dfg_ocl::FaultPlan`].
//!
//! The serving layer wraps every accepted socket in a `FaultyStream`. With
//! no plan installed the wrapper is a transparent passthrough; with one, each
//! read and write first consults the plan — exactly like the device layer
//! consults it before each transfer or launch — so chaos runs are **seeded
//! and reproducible**: the same spec and seed produce the same drop/stall/
//! garble schedule, counted per kind across all connections sharing the
//! plan.
//!
//! Semantics per fired fault:
//!
//! * `conn_drop` — the socket is shut down both ways and the operation
//!   fails with `ConnectionReset`; the server tears the connection down
//!   through its normal disconnect path (flipping the in-flight request's
//!   cancel flag).
//! * `conn_stall` — the operation sleeps for the configured stall before
//!   proceeding, modeling a hung peer or congested link; with a read
//!   deadline armed, a stall longer than the deadline surfaces as a
//!   timeout.
//! * `byte_garble` — one bit of a successful read is flipped, at a
//!   position derived from the fault's op index (deterministic given the
//!   seed). A garbled frame typically fails JSON parsing and is answered
//!   with a malformed-frame error — never a panic.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::Duration;

use dfg_ocl::{FaultKind, FaultPlan};

/// A TCP stream that injects connection-level faults from a shared
/// [`FaultPlan`] before (and during) each I/O operation. See the module
/// docs for the per-kind semantics.
pub struct FaultyStream {
    inner: TcpStream,
    plan: Option<FaultPlan>,
    stall: Duration,
}

impl FaultyStream {
    /// Wrap `inner`, injecting faults from `plan` (`None` = passthrough).
    /// `stall` is how long a fired `conn_stall` sleeps.
    pub fn new(inner: TcpStream, plan: Option<FaultPlan>, stall: Duration) -> Self {
        FaultyStream { inner, plan, stall }
    }

    /// Clone the underlying socket handle; the clone shares the fault plan
    /// (and therefore its per-kind operation counters) with `self`.
    pub fn try_clone(&self) -> io::Result<FaultyStream> {
        Ok(FaultyStream {
            inner: self.inner.try_clone()?,
            plan: self.plan.clone(),
            stall: self.stall,
        })
    }

    /// Shut down the underlying socket (both directions by default at the
    /// call sites; pass the half explicitly).
    pub fn shutdown(&self, how: Shutdown) -> io::Result<()> {
        self.inner.shutdown(how)
    }

    /// Arm (or clear) the socket's read timeout.
    pub fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        self.inner.set_read_timeout(dur)
    }

    /// Arm (or clear) the socket's write timeout.
    pub fn set_write_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        self.inner.set_write_timeout(dur)
    }

    /// The peer's address.
    pub fn peer_addr(&self) -> io::Result<SocketAddr> {
        self.inner.peer_addr()
    }

    /// Consult the plan before an I/O operation: maybe stall, maybe kill
    /// the connection.
    fn gate(&self) -> io::Result<()> {
        let Some(plan) = &self.plan else {
            return Ok(());
        };
        if plan.check(FaultKind::ConnStall).is_some() {
            std::thread::sleep(self.stall);
        }
        if plan.check(FaultKind::ConnDrop).is_some() {
            let _ = self.inner.shutdown(Shutdown::Both);
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "injected conn_drop",
            ));
        }
        Ok(())
    }
}

impl Read for FaultyStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.gate()?;
        let n = self.inner.read(buf)?;
        if n > 0 {
            if let Some(plan) = &self.plan {
                if let Some(f) = plan.check(FaultKind::ByteGarble) {
                    // Flip one deterministic bit of the bytes just read.
                    let i = (f.op_index as usize) % n;
                    buf[i] ^= 1 << (f.op_index % 8);
                }
            }
        }
        Ok(n)
    }
}

impl Write for FaultyStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.gate()?;
        self.inner.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};
    use std::net::TcpListener;

    /// A connected localhost socket pair.
    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    #[test]
    fn passthrough_without_a_plan() {
        let (client, server) = pair();
        let mut faulty = FaultyStream::new(server, None, Duration::ZERO);
        let mut client = client;
        client.write_all(b"hello\n").unwrap();
        let mut reader = BufReader::new(&mut faulty);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line, "hello\n");
    }

    #[test]
    fn conn_drop_resets_the_connection() {
        let (mut client, server) = pair();
        let plan = FaultPlan::parse("conn_drop@1").unwrap();
        let mut faulty = FaultyStream::new(server, Some(plan), Duration::ZERO);
        client.write_all(b"hi\n").unwrap();
        let mut buf = [0u8; 8];
        let err = faulty.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        // The peer observes the shutdown: its next read returns EOF (or a
        // reset, platform-dependent); either way the connection is dead.
        let _ = client.read(&mut buf);
    }

    #[test]
    fn byte_garble_flips_exactly_one_deterministic_bit() {
        let read_back = |seed: u64| -> Vec<u8> {
            let (mut client, server) = pair();
            let plan = FaultPlan::parse(&format!("byte_garble@1, seed={seed}")).unwrap();
            let mut faulty = FaultyStream::new(server, Some(plan), Duration::ZERO);
            client.write_all(b"abcdef\n").unwrap();
            let mut buf = [0u8; 7];
            faulty.read_exact(&mut buf).unwrap();
            buf.to_vec()
        };
        let got = read_back(1);
        let clean = b"abcdef\n";
        let flipped_bits: u32 = got
            .iter()
            .zip(clean)
            .map(|(g, c)| (g ^ c).count_ones())
            .sum();
        assert_eq!(flipped_bits, 1, "exactly one bit flipped: {got:?}");
        assert_eq!(read_back(1), got, "same seed, same garble");
    }

    #[test]
    fn conn_stall_delays_but_preserves_bytes() {
        let (mut client, server) = pair();
        let plan = FaultPlan::parse("conn_stall@1").unwrap();
        let mut faulty = FaultyStream::new(server, Some(plan), Duration::from_millis(20));
        client.write_all(b"slow\n").unwrap();
        let t0 = std::time::Instant::now();
        let mut buf = [0u8; 5];
        faulty.read_exact(&mut buf).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(20), "stall applied");
        assert_eq!(&buf, b"slow\n");
    }

    #[test]
    fn clones_share_the_plan_counters() {
        let (mut client, server) = pair();
        let plan = FaultPlan::parse("conn_drop@2").unwrap();
        let faulty = FaultyStream::new(server, Some(plan.clone()), Duration::ZERO);
        let mut clone = faulty.try_clone().unwrap();
        client.write_all(b"xy\n").unwrap();
        let mut buf = [0u8; 3];
        // First op (on the clone) passes; second op (back on the clone)
        // consumes the shared counter and drops.
        clone.read_exact(&mut buf).unwrap();
        assert_eq!(plan.ops_seen(FaultKind::ConnDrop), 1);
        let err = clone.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
    }
}
