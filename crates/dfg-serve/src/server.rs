//! The server: accept loop, bounded admission queue, coalescing executor.
//!
//! Threading model (one paragraph, because it is the whole design): an
//! *accept* thread takes TCP connections and spawns one *reader* and one
//! *writer* thread per connection; readers parse request lines and push
//! jobs into a single **bounded** queue (admission control — a full queue
//! rejects immediately with `overloaded`, it never blocks the socket); one
//! *executor* thread owns the [`dfg_core::SessionRegistry`] — every
//! tenant's resident pool, kernel cache, and quota accounting live on that
//! one thread, the "one resident pool serves all requests" pattern — pops
//! jobs in FIFO order, groups the jobs that arrived within a batch window
//! by `(expression structure, grid, strategy)`, executes one *leader* per
//! group, and fans the leader's payload out to the coalesced followers.
//!
//! # Hostile clients and long uptime
//!
//! The edge assumes nothing about the peer (see `docs/ROBUSTNESS.md`,
//! "Serving resilience"):
//!
//! * request frames are read through a **byte-capped** line reader — an
//!   oversized frame is answered with a typed `too_large` reject and
//!   discarded, never buffered unboundedly;
//! * a per-frame **read deadline** starts at a frame's first byte, so a
//!   slow-loris client trickling bytes is disconnected while an *idle*
//!   keep-alive connection lives forever;
//! * the per-connection reply channel is **bounded** and the writer's
//!   socket carries a write timeout, so a client that stops reading tears
//!   its connection down instead of leaking a writer thread and unbounded
//!   reply memory;
//! * every derive job carries a [`dfg_core::CancelToken`] — deadline from
//!   the request's `deadline_ms` (or the server default), abort flag
//!   flipped when the connection dies — checked at dequeue and between
//!   recovery-ladder rungs, so expired work answers `deadline_exceeded`
//!   in bounded time and orphaned work stops instead of computing into a
//!   closed socket;
//! * a **maintenance tick** on the executor evicts tenants idle past the
//!   TTL and, under memory pressure, trims buffer pools then evicts LRU
//!   tenants (`serve.evict` spans, `evicted_idle`/`evicted_pressure`
//!   counters) — long-running processes do not accumulate dead sessions;
//! * with [`ServeConfig::conn_faults`] installed, every accepted socket is
//!   wrapped in a [`crate::FaultyStream`], so connection-level chaos
//!   (drops, stalls, garbled bytes) is seeded and reproducible.
//!
//! # Examples
//!
//! ```
//! use dfg_serve::{Client, ExecStrategy, ServeConfig, Server};
//!
//! let server = Server::start("127.0.0.1:0", ServeConfig::default()).unwrap();
//! let addr = server.local_addr().to_string();
//!
//! let mut client = Client::connect(&addr).unwrap();
//! let reply = client
//!     .derive("alice", "m = sqrt(u*u + v*v + w*w)", [8, 8, 8], ExecStrategy::Fusion, false)
//!     .unwrap();
//! assert_eq!(reply.ncells, 512);
//!
//! client.shutdown().unwrap();
//! let counters = server.join().unwrap();
//! assert_eq!(counters.ok, 1);
//! ```

use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, TrySendError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use dfg_core::{CancelToken, EngineOptions, FieldSet, RecoveryPolicy, SessionRegistry};
use dfg_mesh::{RectilinearMesh, RtWorkload};
use dfg_ocl::{DeviceProfile, FaultPlan};
use dfg_trace::{span, Tracer};

use crate::faulty::FaultyStream;
use crate::protocol::{
    DeriveReply, DeriveRequest, ExecStrategy, RejectKind, Request, Response, ServerCounters,
};

/// Server configuration; `Default` gives a CPU-profile server with
/// coalescing on, a 64-deep admission queue, a 2 ms batch window, and the
/// resilient recovery policy (graceful degradation under quota pressure).
#[derive(Clone)]
pub struct ServeConfig {
    /// Device profile each tenant's engine simulates.
    pub profile: DeviceProfile,
    /// Engine options shared by every tenant (recovery policy included).
    pub options: EngineOptions,
    /// Admission-control bound: jobs queued beyond this are rejected with
    /// `overloaded` instead of waiting.
    pub queue_capacity: usize,
    /// How long the executor waits after the first job of a batch for
    /// coalescable peers to arrive.
    pub batch_window: Duration,
    /// Whether identical requests in a window share one execution.
    /// Requests are grouped by the *canonical hash* of their optimized
    /// networks, so commutative spellings (`u*u + v*v` vs `v*v + u*u`)
    /// coalesce too.
    pub coalesce: bool,
    /// Cross-request network fusion: *distinct* expressions in one batch
    /// window that share subgraphs (same grid, same core strategy) are
    /// merged into one multi-output network (see
    /// `dfg_dataflow::merge_networks`), compiled once, and executed once —
    /// each request gets its own root's field. Off by default: merged
    /// executions run on one leader session, which changes per-tenant
    /// compile/cycle accounting.
    pub cross_fusion: bool,
    /// Default per-tenant device-memory quota (`None`: device capacity).
    pub default_quota: Option<u64>,
    /// Explicit per-tenant quotas, applied before the first request.
    pub quotas: Vec<(String, u64)>,
    /// Tracer receiving `serve.*` spans (and the engines' session spans).
    pub tracer: Option<Tracer>,
    /// Hard cap on one request frame's bytes (newline included). An
    /// oversized frame is rejected with `too_large` and discarded through
    /// its terminating newline — the reader never buffers more than this.
    pub max_line_bytes: usize,
    /// Per-frame read deadline, armed at a frame's **first byte**: a
    /// slow-loris client trickling a request is disconnected once the
    /// frame takes this long, while an idle connection (no frame started)
    /// is never timed out. `None` disables the guard.
    pub read_deadline: Option<Duration>,
    /// Socket write timeout for the per-connection writer thread; a write
    /// stalled past this tears the connection down (and flips the
    /// connection's cancel flag) instead of leaking the thread.
    pub write_deadline: Option<Duration>,
    /// Bound on the per-connection reply channel; when a client stops
    /// reading and the channel fills, the connection is cancelled rather
    /// than buffering replies without limit.
    pub reply_queue_depth: usize,
    /// Deadline applied to derive requests that carry no `deadline_ms` of
    /// their own. `None` (the default) leaves such requests unbounded.
    pub default_deadline: Option<Duration>,
    /// Evict a tenant's session (resident fields, kernel cache, pool)
    /// after this much time without a request. `None` disables idle
    /// eviction.
    pub idle_ttl: Option<Duration>,
    /// Memory-pressure threshold over all tenants' device bytes (in-use +
    /// pooled). When crossed, the watchdog first trims every pool, then
    /// evicts least-recently-used tenants until back under. `None`
    /// disables the watchdog.
    pub memory_pressure_bytes: Option<u64>,
    /// Seeded connection-fault plan (`conn_drop` / `conn_stall` /
    /// `byte_garble` kinds); every accepted socket shares it, so a chaos
    /// run's fault schedule is reproducible. `None`: no injection.
    pub conn_faults: Option<FaultPlan>,
    /// How long an injected `conn_stall` blocks one I/O operation.
    pub conn_stall: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            profile: DeviceProfile::intel_x5660(),
            options: EngineOptions {
                recovery: RecoveryPolicy::resilient(),
                ..EngineOptions::default()
            },
            queue_capacity: 64,
            batch_window: Duration::from_millis(2),
            coalesce: true,
            cross_fusion: false,
            default_quota: None,
            quotas: Vec::new(),
            tracer: None,
            max_line_bytes: 256 * 1024,
            read_deadline: Some(Duration::from_secs(10)),
            write_deadline: Some(Duration::from_secs(10)),
            reply_queue_depth: 256,
            default_deadline: None,
            idle_ttl: None,
            memory_pressure_bytes: None,
            conn_faults: None,
            conn_stall: Duration::from_millis(20),
        }
    }
}

/// The connection-edge knobs every reader/writer thread needs, split out
/// of [`ServeConfig`] so the accept loop can hand one `Arc` to each
/// connection.
struct ConnLimits {
    max_line_bytes: usize,
    read_deadline: Option<Duration>,
    write_deadline: Option<Duration>,
    reply_depth: usize,
    default_deadline: Option<Duration>,
    conn_faults: Option<FaultPlan>,
    conn_stall: Duration,
}

/// The reply side of one connection: a bounded channel to the writer
/// thread plus the connection's cancel flag. `send` never blocks — a full
/// channel means the client stopped reading, so the connection is
/// cancelled instead.
#[derive(Clone)]
struct ReplyTx {
    tx: mpsc::SyncSender<String>,
    conn: CancelToken,
}

impl ReplyTx {
    /// Queue one reply line; `false` means the connection is dead (or was
    /// just declared dead because the bounded channel overflowed).
    fn send(&self, line: String) -> bool {
        if self.conn.is_cancelled() {
            return false;
        }
        match self.tx.try_send(line) {
            Ok(()) => true,
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                self.conn.cancel();
                false
            }
        }
    }
}

/// One parsed request plus the channel its reply must go down and the
/// cancellation token governing its execution (connection flag + request
/// deadline).
struct Job {
    req: Request,
    reply: ReplyTx,
    cancel: CancelToken,
}

struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

struct Shared {
    queue: Mutex<QueueState>,
    cond: Condvar,
    shutdown: AtomicBool,
    counters: Mutex<ServerCounters>,
    capacity: usize,
    tracer: Option<Tracer>,
    limits: ConnLimits,
}

impl Shared {
    fn count(&self, f: impl FnOnce(&mut ServerCounters)) {
        f(&mut self.counters.lock().expect("counters lock"));
    }

    /// Enqueue under the admission bound; `Some(job)` hands the job back
    /// when the queue was full or closed and the caller must reject it.
    fn try_push(&self, job: Job) -> Option<Job> {
        let mut q = self.queue.lock().expect("queue lock");
        if q.closed || q.jobs.len() >= self.capacity {
            return Some(job);
        }
        q.jobs.push_back(job);
        drop(q);
        self.cond.notify_one();
        None
    }

    fn close_queue(&self) {
        self.queue.lock().expect("queue lock").closed = true;
        self.cond.notify_all();
    }
}

/// A running serve instance; see the [module docs](self) for the
/// threading model and `docs/SERVING.md` for the operator-facing story.
pub struct Server {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<thread::JoinHandle<()>>,
    executor: Option<thread::JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (use port 0 to let the OS pick) and start the accept
    /// and executor threads. Returns once the socket is listening.
    pub fn start(addr: &str, config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            cond: Condvar::new(),
            shutdown: AtomicBool::new(false),
            counters: Mutex::new(ServerCounters::default()),
            capacity: config.queue_capacity.max(1),
            tracer: config.tracer.clone(),
            limits: ConnLimits {
                max_line_bytes: config.max_line_bytes.max(64),
                read_deadline: config.read_deadline,
                write_deadline: config.write_deadline,
                reply_depth: config.reply_queue_depth.max(1),
                default_deadline: config.default_deadline,
                conn_faults: config.conn_faults.clone(),
                conn_stall: config.conn_stall,
            },
        });

        let accept = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || accept_loop(listener, shared))
        };
        let executor = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || executor_loop(shared, config, local_addr))
        };
        Ok(Server {
            local_addr,
            shared,
            accept: Some(accept),
            executor: Some(executor),
        })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Snapshot of the aggregate counters so far.
    pub fn counters(&self) -> ServerCounters {
        *self.shared.counters.lock().expect("counters lock")
    }

    /// Begin shutdown from the host side (equivalent to a client
    /// `shutdown` request): stop admitting, drain, exit.
    pub fn shutdown(&self) {
        begin_shutdown(&self.shared, self.local_addr);
    }

    /// Wait for the accept and executor threads to finish and return the
    /// final counters. Call [`Server::shutdown`] (or send a client
    /// `shutdown` request) first, or this blocks forever.
    pub fn join(mut self) -> thread::Result<ServerCounters> {
        if let Some(h) = self.accept.take() {
            h.join()?;
        }
        if let Some(h) = self.executor.take() {
            h.join()?;
        }
        Ok(*self.shared.counters.lock().expect("counters lock"))
    }
}

fn begin_shutdown(shared: &Shared, addr: SocketAddr) {
    if shared.shutdown.swap(true, Ordering::SeqCst) {
        return;
    }
    shared.close_queue();
    // Poke the accept loop out of `accept()` so it can observe the flag.
    let _ = TcpStream::connect(addr);
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    for conn in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let shared = Arc::clone(&shared);
        thread::spawn(move || connection_loop(stream, shared));
    }
}

/// What the capped, deadline-armed frame reader produced.
enum Frame {
    /// One complete line within the byte cap (newline stripped, lossily
    /// decoded — garbled bytes must parse-fail, never panic).
    Line(String),
    /// The frame exceeded the byte cap; it was discarded through its
    /// terminating newline and the connection can continue.
    TooLarge,
    /// Clean end of stream.
    Eof,
    /// The frame's read deadline passed mid-frame (slow loris) or the
    /// socket failed; the connection is torn down.
    Dead,
}

/// Read one newline-terminated frame, buffering at most `max_line_bytes`.
/// The read deadline is armed when the frame's *first* bytes arrive, so an
/// idle connection blocks here indefinitely without being killed.
fn read_frame(reader: &mut BufReader<FaultyStream>, limits: &ConnLimits) -> Frame {
    let mut line: Vec<u8> = Vec::new();
    let mut discarding = false;
    let mut frame_deadline: Option<Instant> = None;
    if reader.get_ref().set_read_timeout(None).is_err() {
        return Frame::Dead;
    }
    loop {
        if let Some(at) = frame_deadline {
            let remaining = at.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Frame::Dead;
            }
            if reader
                .get_ref()
                .set_read_timeout(Some(remaining.max(Duration::from_millis(1))))
                .is_err()
            {
                return Frame::Dead;
            }
        }
        let (consumed, done) = match reader.fill_buf() {
            Ok([]) => return Frame::Eof,
            Ok(chunk) => match chunk.iter().position(|&b| b == b'\n') {
                Some(nl) => {
                    if !discarding {
                        line.extend_from_slice(&chunk[..nl]);
                    }
                    (nl + 1, true)
                }
                None => {
                    if !discarding {
                        line.extend_from_slice(chunk);
                    }
                    (chunk.len(), false)
                }
            },
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Frame::Dead;
            }
            Err(_) => return Frame::Dead,
        };
        reader.consume(consumed);
        if frame_deadline.is_none() {
            frame_deadline = limits.read_deadline.map(|d| Instant::now() + d);
        }
        if !discarding && line.len() >= limits.max_line_bytes {
            line.clear();
            line.shrink_to_fit();
            discarding = true;
        }
        if done {
            return if discarding {
                Frame::TooLarge
            } else {
                Frame::Line(String::from_utf8_lossy(&line).into_owned())
            };
        }
    }
}

fn connection_loop(stream: TcpStream, shared: Arc<Shared>) {
    let limits = &shared.limits;
    let stream = FaultyStream::new(stream, limits.conn_faults.clone(), limits.conn_stall);
    // One abort flag per connection: flipped when the writer stalls out,
    // the reply channel overflows, or the socket dies — every in-flight
    // job derived from it stops at its next cancellation point.
    let conn = CancelToken::new();
    let (tx, rx) = mpsc::sync_channel::<String>(limits.reply_depth);
    let reply = ReplyTx {
        tx,
        conn: conn.clone(),
    };
    let writer_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    if writer_stream
        .set_write_timeout(limits.write_deadline)
        .is_err()
    {
        return;
    }
    let writer = {
        let conn = conn.clone();
        thread::spawn(move || {
            let mut out = BufWriter::new(writer_stream);
            while let Ok(line) = rx.recv() {
                if out.write_all(line.as_bytes()).is_err() || out.flush().is_err() {
                    // Stalled or dead client: cancel the connection's
                    // in-flight work and unblock the reader.
                    conn.cancel();
                    let _ = out.get_ref().shutdown(Shutdown::Both);
                    break;
                }
            }
        })
    };

    let mut reader = BufReader::new(stream);
    loop {
        if conn.is_cancelled() {
            break;
        }
        let frame = match read_frame(&mut reader, limits) {
            Frame::Eof => break,
            Frame::Dead => {
                // Slow loris, reset, or injected drop: orphaned work must
                // not keep computing into this connection.
                conn.cancel();
                break;
            }
            Frame::TooLarge => {
                shared.count(|c| {
                    c.requests += 1;
                    c.rejected_too_large += 1;
                });
                drop(span!(shared.tracer, "serve.reject", reason = "too_large"));
                reply.send(
                    Response::Rejected {
                        id: 0,
                        kind: RejectKind::TooLarge,
                        message: format!("request frame exceeds {} bytes", limits.max_line_bytes),
                    }
                    .to_json_line(),
                );
                continue;
            }
            Frame::Line(l) => l,
        };
        let trimmed = frame.trim();
        if trimmed.is_empty() {
            continue;
        }
        shared.count(|c| c.requests += 1);
        let req = match Request::parse(trimmed) {
            Ok(req) => req,
            Err(e) => {
                // Malformed frame: echo the request id when the frame was
                // coherent enough to carry one, so pipelining clients can
                // match the failure to a request.
                let id = Request::frame_id(trimmed).unwrap_or(0);
                shared.count(|c| c.malformed += 1);
                reply.send(
                    Response::Error {
                        id,
                        message: format!("bad request: {e}"),
                    }
                    .to_json_line(),
                );
                continue;
            }
        };
        match req {
            Request::Ping { id } => {
                reply.send(Response::Pong { id }.to_json_line());
            }
            req => {
                let (id, deadline) = match &req {
                    Request::Derive(d) => (
                        d.id,
                        d.deadline_ms
                            .map(Duration::from_millis)
                            .or(limits.default_deadline),
                    ),
                    Request::Stats { id } | Request::Shutdown { id } | Request::Ping { id } => {
                        (*id, None)
                    }
                };
                let cancel = conn.child_with_deadline(deadline.map(|d| Instant::now() + d));
                let job = Job {
                    req,
                    reply: reply.clone(),
                    cancel,
                };
                if let Some(job) = shared.try_push(job) {
                    let shutting_down = shared.shutdown.load(Ordering::SeqCst);
                    let kind = if shutting_down {
                        RejectKind::ShuttingDown
                    } else {
                        RejectKind::Overloaded
                    };
                    if !shutting_down {
                        shared.count(|c| c.rejected_overload += 1);
                        drop(span!(shared.tracer, "serve.reject", reason = "overloaded"));
                    }
                    job.reply.send(
                        Response::Rejected {
                            id,
                            kind,
                            message: if shutting_down {
                                "server is draining".into()
                            } else {
                                "request queue is full".into()
                            },
                        }
                        .to_json_line(),
                    );
                    if shutting_down {
                        break;
                    }
                }
            }
        }
    }
    drop(reply);
    let _ = writer.join();
}

/// The coalescing key: requests whose expressions optimize to networks
/// with the same *canonical hash* (order-, numbering-, and
/// dead-code-insensitive; commutative operands sorted — see
/// `dfg_dataflow::canonical_hash`), over the same grid with the same
/// strategy, can share one execution (inputs are a deterministic function
/// of the grid).
type CoalesceKey = (u64, [usize; 3], ExecStrategy);

/// A derive request together with its reply channel and cancel token.
struct PendingDerive {
    d: DeriveRequest,
    reply: ReplyTx,
    cancel: CancelToken,
}

/// Batched derive groups: a shared key (or `None` when coalescing is off
/// or the expression failed to hash) and the member requests.
type DeriveGroups = Vec<(Option<CoalesceKey>, Vec<PendingDerive>)>;

/// Mergeable coalescing groups partitioned by `(grid, strategy)` for
/// cross-request fusion.
type MergeParts = Vec<(([usize; 3], ExecStrategy), Vec<Vec<PendingDerive>>)>;

/// A memoized frontend result: the optimized network and its canonical
/// hash (the coalescing identity).
#[derive(Clone)]
struct CompiledExpr {
    spec: dfg_dataflow::NetworkSpec,
    hash: u64,
}

struct ExecutorState {
    registry: SessionRegistry,
    /// Host-side synthetic fields per grid: stable across requests, so
    /// generation-based upload skipping works across the whole server.
    fields: HashMap<[usize; 3], FieldSet>,
    /// Memoized `expr source → optimized network + canonical hash`
    /// (None: frontend error, reported per request at execution time).
    compiled: HashMap<String, Option<CompiledExpr>>,
    /// Optimizer level for coalescing/merging: at least `Cse` (so shared
    /// subgraphs actually unify), or higher when the engines run higher.
    level: dfg_dataflow::OptLevel,
}

impl ExecutorState {
    fn compiled(&mut self, expr: &str) -> Option<&CompiledExpr> {
        let level = self.level;
        self.compiled
            .entry(expr.to_string())
            .or_insert_with(|| {
                let raw = dfg_expr::compile(expr).ok()?;
                let opt = dfg_dataflow::optimize(&raw, &[raw.result], level).ok()?;
                let hash = dfg_dataflow::canonical_hash(&opt.spec);
                Some(CompiledExpr {
                    spec: opt.spec,
                    hash,
                })
            })
            .as_ref()
    }

    fn canonical_hash(&mut self, expr: &str) -> Option<u64> {
        self.compiled(expr).map(|c| c.hash)
    }
}

fn executor_loop(shared: Arc<Shared>, config: ServeConfig, local_addr: SocketAddr) {
    let mut registry = SessionRegistry::new(config.profile.clone(), config.options);
    if let Some(tracer) = &config.tracer {
        registry.set_tracer(tracer.clone());
    }
    registry.set_default_quota(config.default_quota);
    for (tenant, bytes) in &config.quotas {
        registry.set_quota(tenant, *bytes);
    }
    let mut state = ExecutorState {
        registry,
        fields: HashMap::new(),
        compiled: HashMap::new(),
        level: config
            .options
            .effective_opt_level()
            .max(dfg_dataflow::OptLevel::Cse),
    };
    // How long the executor sleeps on an empty queue before running a
    // maintenance pass (idle eviction, memory-pressure watchdog). Only
    // armed when a lifecycle feature is configured.
    let tick = (config.idle_ttl.is_some() || config.memory_pressure_bytes.is_some()).then(|| {
        config
            .idle_ttl
            .map(|ttl| (ttl / 4).max(Duration::from_millis(10)))
            .unwrap_or(Duration::from_millis(250))
            .min(Duration::from_millis(500))
    });

    loop {
        let mut batch = {
            let mut q = shared.queue.lock().expect("queue lock");
            while q.jobs.is_empty() && !q.closed {
                match tick {
                    Some(t) => {
                        let (guard, timeout) = shared.cond.wait_timeout(q, t).expect("queue wait");
                        q = guard;
                        if timeout.timed_out() && q.jobs.is_empty() && !q.closed {
                            drop(q);
                            maintenance(&shared, &mut state, &config);
                            q = shared.queue.lock().expect("queue lock");
                        }
                    }
                    None => q = shared.cond.wait(q).expect("queue wait"),
                }
            }
            if q.jobs.is_empty() && q.closed {
                return;
            }
            let mut batch = vec![q.jobs.pop_front().expect("non-empty")];
            if !config.coalesce || config.batch_window.is_zero() {
                batch
            } else {
                drop(q);
                thread::sleep(config.batch_window);
                let mut q = shared.queue.lock().expect("queue lock");
                while let Some(job) = q.jobs.pop_front() {
                    batch.push(job);
                }
                batch
            }
        };

        // Control jobs run in arrival order relative to nothing in
        // particular — they read state the derive jobs in this batch have
        // already (or not yet) produced; pull them out first. Expired or
        // orphaned derive jobs are dropped here — the queue's typed
        // `deadline_exceeded` reply — before any grouping or execution.
        let mut derives: Vec<PendingDerive> = Vec::new();
        for job in batch.drain(..) {
            match job.req {
                Request::Derive(d) => {
                    if reject_if_cancelled(&shared, &job.cancel, d.id, &job.reply, &d.tenant) {
                        continue;
                    }
                    derives.push(PendingDerive {
                        d,
                        reply: job.reply,
                        cancel: job.cancel,
                    });
                }
                Request::Stats { id } => {
                    let resp = Response::Stats {
                        id,
                        server: *shared.counters.lock().expect("counters lock"),
                        tenants: state.registry.all_stats(),
                    };
                    job.reply.send(resp.to_json_line());
                }
                Request::Shutdown { id } => {
                    job.reply.send(Response::ShuttingDown { id }.to_json_line());
                    begin_shutdown(&shared, local_addr);
                }
                Request::Ping { id } => {
                    job.reply.send(Response::Pong { id }.to_json_line());
                }
            }
        }

        // Group by coalescing key; requests whose expression fails to
        // lower get their own singleton group (keyed by error) so the
        // frontend error is reported per request.
        let mut groups: DeriveGroups = Vec::new();
        for p in derives {
            let key = if config.coalesce {
                state
                    .canonical_hash(&p.d.expr)
                    .map(|h| (h, p.d.grid, p.d.strategy))
            } else {
                None
            };
            match key {
                Some(k) => {
                    if let Some((_, members)) =
                        groups.iter_mut().find(|(g, _)| g.as_ref() == Some(&k))
                    {
                        members.push(p);
                    } else {
                        groups.push((Some(k), vec![p]));
                    }
                }
                None => groups.push((None, vec![p])),
            }
        }

        if config.cross_fusion {
            dispatch_cross_fusion(&shared, &mut state, groups);
        } else {
            for (_, members) in groups {
                run_group(&shared, &mut state, members);
            }
        }
        if tick.is_some() {
            maintenance(&shared, &mut state, &config);
        }
    }
}

/// If `cancel` has fired, answer (or silently drop) the request and return
/// `true`: an expired deadline gets a typed `deadline_exceeded` reply and
/// a `serve.deadline` span; a dead connection gets no reply (nobody is
/// listening), a `cancelled` counter bump, and a `serve.cancel` span.
fn reject_if_cancelled(
    shared: &Shared,
    cancel: &CancelToken,
    id: u64,
    reply: &ReplyTx,
    tenant: &str,
) -> bool {
    if cancel.deadline_exceeded() {
        shared.count(|c| c.rejected_deadline += 1);
        drop(span!(
            shared.tracer,
            "serve.deadline",
            tenant = tenant,
            id = id,
        ));
        reply.send(
            Response::Rejected {
                id,
                kind: RejectKind::DeadlineExceeded,
                message: "deadline expired before execution".into(),
            }
            .to_json_line(),
        );
        true
    } else if cancel.is_cancelled() {
        shared.count(|c| c.cancelled += 1);
        drop(span!(
            shared.tracer,
            "serve.cancel",
            tenant = tenant,
            id = id,
        ));
        true
    } else {
        false
    }
}

/// The executor's lifecycle pass: idle-TTL eviction, then the
/// memory-pressure watchdog (trim pools first — cheap, amortization
/// untouched — then evict LRU tenants until under the threshold). Runs
/// between batches and on empty-queue ticks.
fn maintenance(shared: &Shared, state: &mut ExecutorState, config: &ServeConfig) {
    if let Some(ttl) = config.idle_ttl {
        for tenant in state.registry.evict_idle(ttl) {
            shared.count(|c| c.evicted_idle += 1);
            drop(span!(
                shared.tracer,
                "serve.evict",
                reason = "idle",
                tenant = tenant.as_str(),
            ));
        }
    }
    if let Some(limit) = config.memory_pressure_bytes {
        let total = state.registry.total_in_use_bytes() + state.registry.total_pooled_bytes();
        if total > limit {
            let freed = state.registry.trim_pools();
            drop(span!(
                shared.tracer,
                "serve.trim",
                freed_bytes = freed,
                over_bytes = total.saturating_sub(limit),
            ));
            while state.registry.total_in_use_bytes() > limit {
                let Some(tenant) = state.registry.evict_lru() else {
                    break;
                };
                shared.count(|c| c.evicted_pressure += 1);
                drop(span!(
                    shared.tracer,
                    "serve.evict",
                    reason = "pressure",
                    tenant = tenant.as_str(),
                ));
            }
        }
    }
}

/// Cross-request fusion dispatch: within one batch, groups of *distinct*
/// expressions sharing a grid and a core strategy are merged into one
/// multi-output network and executed once; everything else (streamed
/// requests, frontend errors, lone groups) falls back to per-group
/// execution.
fn dispatch_cross_fusion(shared: &Shared, state: &mut ExecutorState, groups: DeriveGroups) {
    let mut parts: MergeParts = Vec::new();
    let mut rest: Vec<Vec<PendingDerive>> = Vec::new();
    for (key, members) in groups {
        let mergeable = key.is_some()
            && members[0].d.strategy.core().is_some()
            && state.compiled(&members[0].d.expr).is_some();
        match (mergeable, key) {
            (true, Some((_, grid, strategy))) => {
                if let Some((_, part)) = parts.iter_mut().find(|(k, _)| *k == (grid, strategy)) {
                    part.push(members);
                } else {
                    parts.push(((grid, strategy), vec![members]));
                }
            }
            _ => rest.push(members),
        }
    }
    for ((grid, strategy), part) in parts {
        if part.len() < 2 {
            // Nothing to merge with; run it like any other group.
            rest.extend(part);
            continue;
        }
        run_merged(shared, state, grid, strategy, part);
    }
    for members in rest {
        run_group(shared, state, members);
    }
}

/// Execute several distinct-expression groups as one merged network: union
/// the optimized specs, CSE the shared subgraphs across them, run once on
/// the first member's tenant session, and fan each root's field back out
/// to its own group.
fn run_merged(
    shared: &Shared,
    state: &mut ExecutorState,
    grid: [usize; 3],
    strategy: ExecStrategy,
    part: Vec<Vec<PendingDerive>>,
) {
    let core = strategy
        .core()
        .expect("mergeable groups use core strategies");
    let total: u64 = part.iter().map(|g| g.len() as u64).sum();
    let merge_span = span!(
        shared.tracer,
        "serve.merge",
        groups = part.len(),
        requests = total,
    );
    let specs: Vec<dfg_dataflow::NetworkSpec> = part
        .iter()
        .map(|g| {
            state
                .compiled(&g[0].d.expr)
                .expect("pre-checked by dispatch")
                .spec
                .clone()
        })
        .collect();
    let spec_refs: Vec<&dfg_dataflow::NetworkSpec> = specs.iter().collect();
    let merged = match dfg_dataflow::merge_networks_traced(
        &spec_refs,
        state.level,
        shared.tracer.as_ref(),
    ) {
        Ok(m) => m,
        Err(_) => {
            drop(merge_span);
            for members in part {
                run_group(shared, state, members);
            }
            return;
        }
    };
    shared.count(|c| c.batches += 1);
    let leader = part[0][0].d.tenant.clone();
    let compiles_before = state
        .registry
        .stats(&leader)
        .map(|s| s.session.codegen_compiles)
        .unwrap_or(0);
    let wall = Instant::now();
    let fields = state.fields.entry(grid).or_insert_with(|| {
        let mesh = RectilinearMesh::unit_cube(grid);
        FieldSet::for_rt_mesh(&mesh, &RtWorkload::paper_default())
    });
    let result = state
        .registry
        .derive_network(&leader, &merged.spec, &merged.roots, fields, core);
    let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
    drop(merge_span);
    match result {
        Ok((fields_out, report)) if fields_out.len() == part.len() => {
            let degraded = report.recovery.as_ref().is_some_and(|r| r.degraded);
            let compiles_after = state
                .registry
                .stats(&leader)
                .map(|s| s.session.codegen_compiles)
                .unwrap_or(0);
            let compiles = compiles_after.saturating_sub(compiles_before);
            state
                .registry
                .note_opt_saved(&leader, merged.stats.filters_eliminated() as u64);
            let mut first = true;
            for (group, field) in part.into_iter().zip(fields_out) {
                let checksum: f64 = field.data.iter().map(|&v| v as f64).sum();
                for p in group {
                    // The merged execution already ran; a member whose
                    // deadline passed meanwhile (or whose connection died)
                    // still must not get a stale `ok`.
                    if reject_if_cancelled(shared, &p.cancel, p.d.id, &p.reply, &p.d.tenant) {
                        first = false;
                        continue;
                    }
                    state.registry.note_merged(&p.d.tenant);
                    shared.count(|c| {
                        c.ok += 1;
                        c.merged += 1;
                        if degraded {
                            c.degraded += 1;
                        }
                        if !first {
                            c.coalesced += 1;
                        }
                    });
                    let resp = Response::Ok(DeriveReply {
                        id: p.d.id,
                        tenant: p.d.tenant.clone(),
                        expr: p.d.expr.clone(),
                        ncells: field.ncells as u64,
                        checksum,
                        device_ms: report.device_seconds() * 1e3,
                        wall_ms,
                        compiles: if first { compiles } else { 0 },
                        coalesced: !first,
                        batch: total,
                        degraded,
                        data_bits: if p.d.data {
                            Some(field.data.iter().map(|f| f.to_bits()).collect())
                        } else {
                            None
                        },
                        payload_sum: p.d.data.then(|| {
                            dfg_ocl::integrity::checksum_f32s(
                                dfg_ocl::integrity::PAYLOAD_SUM_SEED,
                                &field.data,
                            )
                        }),
                    });
                    p.reply.send(resp.to_json_line());
                    first = false;
                }
            }
        }
        _ => {
            // Merged execution failed (e.g. the leader's quota could not
            // hold the union network): fall back to independent per-group
            // execution so errors stay attributed per request.
            for members in part {
                run_group(shared, state, members);
            }
        }
    }
}

fn run_group(shared: &Shared, state: &mut ExecutorState, members: Vec<PendingDerive>) {
    let batch_size = members.len() as u64;
    let _batch_span = if batch_size > 1 {
        Some(span!(
            shared.tracer,
            "serve.batch",
            size = batch_size,
            expr = members[0].d.expr.as_str(),
        ))
    } else {
        None
    };
    if batch_size > 1 {
        shared.count(|c| c.batches += 1);
    }

    // If any member wants the payload, the leader computes it once and
    // every follower that asked shares the same bits.
    let want_data = members.iter().any(|p| p.d.data);
    let mut leader_payload: Option<DeriveReply> = None;
    for p in members {
        // Expired or orphaned members never execute and never get a stale
        // reply — even as followers of a leader that already ran.
        if reject_if_cancelled(shared, &p.cancel, p.d.id, &p.reply, &p.d.tenant) {
            continue;
        }
        if let Some(lp) = &leader_payload {
            shared.count(|c| {
                c.ok += 1;
                c.coalesced += 1;
            });
            let resp = Response::Ok(DeriveReply {
                id: p.d.id,
                tenant: p.d.tenant.clone(),
                expr: p.d.expr.clone(),
                compiles: 0,
                coalesced: true,
                batch: batch_size,
                data_bits: if p.d.data { lp.data_bits.clone() } else { None },
                payload_sum: if p.d.data { lp.payload_sum } else { None },
                ..lp.clone()
            });
            p.reply.send(resp.to_json_line());
            continue;
        }
        // Leader (or retry after a failed leader): execute on this
        // member's own tenant so errors stay attributed per request.
        match run_one(shared, state, &p, batch_size, want_data) {
            Some(Response::Ok(r)) => {
                leader_payload = Some(r.clone());
                let mut own = r;
                if !p.d.data {
                    own.data_bits = None;
                    own.payload_sum = None;
                }
                p.reply.send(Response::Ok(own).to_json_line());
            }
            Some(other) => {
                p.reply.send(other.to_json_line());
            }
            // Cancelled mid-execution with a dead connection: no reply,
            // the next member (if any) becomes the leader.
            None => {}
        }
    }
}

fn run_one(
    shared: &Shared,
    state: &mut ExecutorState,
    p: &PendingDerive,
    batch_size: u64,
    want_data: bool,
) -> Option<Response> {
    let d = &p.d;
    let _span = span!(
        shared.tracer,
        "serve.request",
        tenant = d.tenant.as_str(),
        expr = d.expr.as_str(),
        strategy = d.strategy.as_str(),
    );
    let compiles_before = state
        .registry
        .stats(&d.tenant)
        .map(|s| s.session.codegen_compiles)
        .unwrap_or(0);
    let wall = Instant::now();
    let fields = state.fields.entry(d.grid).or_insert_with(|| {
        let mesh = RectilinearMesh::unit_cube(d.grid);
        FieldSet::for_rt_mesh(&mesh, &RtWorkload::paper_default())
    });
    // Install the job's token so the engine observes disconnects and
    // deadline expiry between recovery-ladder rungs; always cleared after,
    // fired or not.
    state.registry.set_cancel(&d.tenant, Some(p.cancel.clone()));
    let result = match d.strategy.core() {
        Some(s) => state.registry.derive(&d.tenant, &d.expr, fields, s),
        None => state
            .registry
            .derive_streamed(&d.tenant, &d.expr, fields, None),
    };
    state.registry.set_cancel(&d.tenant, None);
    let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
    match result {
        Ok(report) => {
            let degraded = report.recovery.as_ref().is_some_and(|r| r.degraded);
            let field = report.field.as_ref().expect("real-mode serve");
            let checksum: f64 = field.data.iter().map(|&v| v as f64).sum();
            let compiles_after = state
                .registry
                .stats(&d.tenant)
                .map(|s| s.session.codegen_compiles)
                .unwrap_or(0);
            shared.count(|c| {
                c.ok += 1;
                if degraded {
                    c.degraded += 1;
                }
            });
            Some(Response::Ok(DeriveReply {
                id: d.id,
                tenant: d.tenant.clone(),
                expr: d.expr.clone(),
                ncells: field.ncells as u64,
                checksum,
                device_ms: report.device_seconds() * 1e3,
                wall_ms,
                compiles: compiles_after.saturating_sub(compiles_before),
                coalesced: false,
                batch: batch_size,
                degraded,
                data_bits: if want_data {
                    Some(field.data.iter().map(|f| f.to_bits()).collect())
                } else {
                    None
                },
                payload_sum: want_data.then(|| {
                    dfg_ocl::integrity::checksum_f32s(
                        dfg_ocl::integrity::PAYLOAD_SUM_SEED,
                        &field.data,
                    )
                }),
            }))
        }
        Err(e) if e.is_cancelled() => {
            // The token fired mid-execution; rollback already ran inside
            // the registry's leak guard. A deadline gets its typed reply;
            // a dead connection gets silence (nobody is listening).
            if e.deadline_exceeded() {
                shared.count(|c| c.rejected_deadline += 1);
                drop(span!(
                    shared.tracer,
                    "serve.deadline",
                    tenant = d.tenant.as_str(),
                    id = d.id,
                ));
                Some(Response::Rejected {
                    id: d.id,
                    kind: RejectKind::DeadlineExceeded,
                    message: "deadline expired during execution".into(),
                })
            } else {
                shared.count(|c| c.cancelled += 1);
                drop(span!(
                    shared.tracer,
                    "serve.cancel",
                    tenant = d.tenant.as_str(),
                    id = d.id,
                ));
                None
            }
        }
        Err(e) if e.is_out_of_memory() => {
            shared.count(|c| c.rejected_quota += 1);
            drop(span!(
                shared.tracer,
                "serve.reject",
                reason = "quota_exceeded",
                tenant = d.tenant.as_str(),
            ));
            Some(Response::Rejected {
                id: d.id,
                kind: RejectKind::QuotaExceeded,
                message: format!("tenant `{}` exceeded its device-memory quota", d.tenant),
            })
        }
        Err(e) => {
            shared.count(|c| c.errors += 1);
            Some(Response::Error {
                id: d.id,
                message: e.to_string(),
            })
        }
    }
}
