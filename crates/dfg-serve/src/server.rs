//! The server: accept loop, bounded admission queue, coalescing executor.
//!
//! Threading model (one paragraph, because it is the whole design): an
//! *accept* thread takes TCP connections and spawns one *reader* and one
//! *writer* thread per connection; readers parse request lines and push
//! jobs into a single **bounded** queue (admission control — a full queue
//! rejects immediately with `overloaded`, it never blocks the socket); one
//! *executor* thread owns the [`dfg_core::SessionRegistry`] — every
//! tenant's resident pool, kernel cache, and quota accounting live on that
//! one thread, the "one resident pool serves all requests" pattern — pops
//! jobs in FIFO order, groups the jobs that arrived within a batch window
//! by `(expression structure, grid, strategy)`, executes one *leader* per
//! group, and fans the leader's payload out to the coalesced followers.
//!
//! # Examples
//!
//! ```
//! use dfg_serve::{Client, ExecStrategy, ServeConfig, Server};
//!
//! let server = Server::start("127.0.0.1:0", ServeConfig::default()).unwrap();
//! let addr = server.local_addr().to_string();
//!
//! let mut client = Client::connect(&addr).unwrap();
//! let reply = client
//!     .derive("alice", "m = sqrt(u*u + v*v + w*w)", [8, 8, 8], ExecStrategy::Fusion, false)
//!     .unwrap();
//! assert_eq!(reply.ncells, 512);
//!
//! client.shutdown().unwrap();
//! let counters = server.join().unwrap();
//! assert_eq!(counters.ok, 1);
//! ```

use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use dfg_core::{EngineOptions, FieldSet, RecoveryPolicy, SessionRegistry};
use dfg_mesh::{RectilinearMesh, RtWorkload};
use dfg_ocl::DeviceProfile;
use dfg_trace::{span, Tracer};

use crate::protocol::{
    DeriveReply, DeriveRequest, ExecStrategy, RejectKind, Request, Response, ServerCounters,
};

/// Server configuration; `Default` gives a CPU-profile server with
/// coalescing on, a 64-deep admission queue, a 2 ms batch window, and the
/// resilient recovery policy (graceful degradation under quota pressure).
#[derive(Clone)]
pub struct ServeConfig {
    /// Device profile each tenant's engine simulates.
    pub profile: DeviceProfile,
    /// Engine options shared by every tenant (recovery policy included).
    pub options: EngineOptions,
    /// Admission-control bound: jobs queued beyond this are rejected with
    /// `overloaded` instead of waiting.
    pub queue_capacity: usize,
    /// How long the executor waits after the first job of a batch for
    /// coalescable peers to arrive.
    pub batch_window: Duration,
    /// Whether identical requests in a window share one execution.
    /// Requests are grouped by the *canonical hash* of their optimized
    /// networks, so commutative spellings (`u*u + v*v` vs `v*v + u*u`)
    /// coalesce too.
    pub coalesce: bool,
    /// Cross-request network fusion: *distinct* expressions in one batch
    /// window that share subgraphs (same grid, same core strategy) are
    /// merged into one multi-output network (see
    /// `dfg_dataflow::merge_networks`), compiled once, and executed once —
    /// each request gets its own root's field. Off by default: merged
    /// executions run on one leader session, which changes per-tenant
    /// compile/cycle accounting.
    pub cross_fusion: bool,
    /// Default per-tenant device-memory quota (`None`: device capacity).
    pub default_quota: Option<u64>,
    /// Explicit per-tenant quotas, applied before the first request.
    pub quotas: Vec<(String, u64)>,
    /// Tracer receiving `serve.*` spans (and the engines' session spans).
    pub tracer: Option<Tracer>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            profile: DeviceProfile::intel_x5660(),
            options: EngineOptions {
                recovery: RecoveryPolicy::resilient(),
                ..EngineOptions::default()
            },
            queue_capacity: 64,
            batch_window: Duration::from_millis(2),
            coalesce: true,
            cross_fusion: false,
            default_quota: None,
            quotas: Vec::new(),
            tracer: None,
        }
    }
}

/// One parsed request plus the channel its reply must go down.
struct Job {
    req: Request,
    reply: mpsc::Sender<String>,
}

struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

struct Shared {
    queue: Mutex<QueueState>,
    cond: Condvar,
    shutdown: AtomicBool,
    counters: Mutex<ServerCounters>,
    capacity: usize,
    tracer: Option<Tracer>,
}

impl Shared {
    fn count(&self, f: impl FnOnce(&mut ServerCounters)) {
        f(&mut self.counters.lock().expect("counters lock"));
    }

    /// Enqueue under the admission bound; `Err` means the queue was full
    /// or closed and the caller must reject the request.
    fn try_push(&self, job: Job) -> Result<(), Job> {
        let mut q = self.queue.lock().expect("queue lock");
        if q.closed {
            return Err(job);
        }
        if q.jobs.len() >= self.capacity {
            return Err(job);
        }
        q.jobs.push_back(job);
        drop(q);
        self.cond.notify_one();
        Ok(())
    }

    fn close_queue(&self) {
        self.queue.lock().expect("queue lock").closed = true;
        self.cond.notify_all();
    }
}

/// A running serve instance; see the [module docs](self) for the
/// threading model and `docs/SERVING.md` for the operator-facing story.
pub struct Server {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<thread::JoinHandle<()>>,
    executor: Option<thread::JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (use port 0 to let the OS pick) and start the accept
    /// and executor threads. Returns once the socket is listening.
    pub fn start(addr: &str, config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            cond: Condvar::new(),
            shutdown: AtomicBool::new(false),
            counters: Mutex::new(ServerCounters::default()),
            capacity: config.queue_capacity.max(1),
            tracer: config.tracer.clone(),
        });

        let accept = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || accept_loop(listener, shared))
        };
        let executor = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || executor_loop(shared, config, local_addr))
        };
        Ok(Server {
            local_addr,
            shared,
            accept: Some(accept),
            executor: Some(executor),
        })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Snapshot of the aggregate counters so far.
    pub fn counters(&self) -> ServerCounters {
        *self.shared.counters.lock().expect("counters lock")
    }

    /// Begin shutdown from the host side (equivalent to a client
    /// `shutdown` request): stop admitting, drain, exit.
    pub fn shutdown(&self) {
        begin_shutdown(&self.shared, self.local_addr);
    }

    /// Wait for the accept and executor threads to finish and return the
    /// final counters. Call [`Server::shutdown`] (or send a client
    /// `shutdown` request) first, or this blocks forever.
    pub fn join(mut self) -> thread::Result<ServerCounters> {
        if let Some(h) = self.accept.take() {
            h.join()?;
        }
        if let Some(h) = self.executor.take() {
            h.join()?;
        }
        Ok(*self.shared.counters.lock().expect("counters lock"))
    }
}

fn begin_shutdown(shared: &Shared, addr: SocketAddr) {
    if shared.shutdown.swap(true, Ordering::SeqCst) {
        return;
    }
    shared.close_queue();
    // Poke the accept loop out of `accept()` so it can observe the flag.
    let _ = TcpStream::connect(addr);
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    for conn in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let shared = Arc::clone(&shared);
        thread::spawn(move || connection_loop(stream, shared));
    }
}

fn connection_loop(stream: TcpStream, shared: Arc<Shared>) {
    let (tx, rx) = mpsc::channel::<String>();
    let writer_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let writer = thread::spawn(move || {
        let mut out = BufWriter::new(writer_stream);
        while let Ok(line) = rx.recv() {
            if out.write_all(line.as_bytes()).is_err() || out.flush().is_err() {
                break;
            }
        }
    });

    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        shared.count(|c| c.requests += 1);
        let req = match Request::parse(trimmed) {
            Ok(req) => req,
            Err(e) => {
                let _ = tx.send(
                    Response::Error {
                        id: 0,
                        message: format!("bad request: {e}"),
                    }
                    .to_json_line(),
                );
                continue;
            }
        };
        match req {
            Request::Ping { id } => {
                let _ = tx.send(Response::Pong { id }.to_json_line());
            }
            req => {
                let id = match &req {
                    Request::Derive(d) => d.id,
                    Request::Stats { id } | Request::Shutdown { id } | Request::Ping { id } => *id,
                };
                let job = Job {
                    req,
                    reply: tx.clone(),
                };
                if let Err(job) = shared.try_push(job) {
                    let shutting_down = shared.shutdown.load(Ordering::SeqCst);
                    let kind = if shutting_down {
                        RejectKind::ShuttingDown
                    } else {
                        RejectKind::Overloaded
                    };
                    if !shutting_down {
                        shared.count(|c| c.rejected_overload += 1);
                        drop(span!(shared.tracer, "serve.reject", reason = "overloaded"));
                    }
                    let _ = job.reply.send(
                        Response::Rejected {
                            id,
                            kind,
                            message: if shutting_down {
                                "server is draining".into()
                            } else {
                                "request queue is full".into()
                            },
                        }
                        .to_json_line(),
                    );
                    if shutting_down {
                        break;
                    }
                }
            }
        }
    }
    drop(tx);
    let _ = writer.join();
}

/// The coalescing key: requests whose expressions optimize to networks
/// with the same *canonical hash* (order-, numbering-, and
/// dead-code-insensitive; commutative operands sorted — see
/// `dfg_dataflow::canonical_hash`), over the same grid with the same
/// strategy, can share one execution (inputs are a deterministic function
/// of the grid).
type CoalesceKey = (u64, [usize; 3], ExecStrategy);

/// A derive request together with the channel its reply line goes to.
type PendingDerive = (DeriveRequest, mpsc::Sender<String>);

/// Batched derive groups: a shared key (or `None` when coalescing is off
/// or the expression failed to hash) and the member requests.
type DeriveGroups = Vec<(Option<CoalesceKey>, Vec<PendingDerive>)>;

/// Mergeable coalescing groups partitioned by `(grid, strategy)` for
/// cross-request fusion.
type MergeParts = Vec<(([usize; 3], ExecStrategy), Vec<Vec<PendingDerive>>)>;

/// A memoized frontend result: the optimized network and its canonical
/// hash (the coalescing identity).
#[derive(Clone)]
struct CompiledExpr {
    spec: dfg_dataflow::NetworkSpec,
    hash: u64,
}

struct ExecutorState {
    registry: SessionRegistry,
    /// Host-side synthetic fields per grid: stable across requests, so
    /// generation-based upload skipping works across the whole server.
    fields: HashMap<[usize; 3], FieldSet>,
    /// Memoized `expr source → optimized network + canonical hash`
    /// (None: frontend error, reported per request at execution time).
    compiled: HashMap<String, Option<CompiledExpr>>,
    /// Optimizer level for coalescing/merging: at least `Cse` (so shared
    /// subgraphs actually unify), or higher when the engines run higher.
    level: dfg_dataflow::OptLevel,
}

impl ExecutorState {
    fn compiled(&mut self, expr: &str) -> Option<&CompiledExpr> {
        let level = self.level;
        self.compiled
            .entry(expr.to_string())
            .or_insert_with(|| {
                let raw = dfg_expr::compile(expr).ok()?;
                let opt = dfg_dataflow::optimize(&raw, &[raw.result], level).ok()?;
                let hash = dfg_dataflow::canonical_hash(&opt.spec);
                Some(CompiledExpr {
                    spec: opt.spec,
                    hash,
                })
            })
            .as_ref()
    }

    fn canonical_hash(&mut self, expr: &str) -> Option<u64> {
        self.compiled(expr).map(|c| c.hash)
    }
}

fn executor_loop(shared: Arc<Shared>, config: ServeConfig, local_addr: SocketAddr) {
    let mut registry = SessionRegistry::new(config.profile.clone(), config.options);
    if let Some(tracer) = &config.tracer {
        registry.set_tracer(tracer.clone());
    }
    registry.set_default_quota(config.default_quota);
    for (tenant, bytes) in &config.quotas {
        registry.set_quota(tenant, *bytes);
    }
    let mut state = ExecutorState {
        registry,
        fields: HashMap::new(),
        compiled: HashMap::new(),
        level: config
            .options
            .effective_opt_level()
            .max(dfg_dataflow::OptLevel::Cse),
    };

    loop {
        let mut batch = {
            let mut q = shared.queue.lock().expect("queue lock");
            while q.jobs.is_empty() && !q.closed {
                q = shared.cond.wait(q).expect("queue wait");
            }
            if q.jobs.is_empty() && q.closed {
                return;
            }
            let mut batch = vec![q.jobs.pop_front().expect("non-empty")];
            if !config.coalesce || config.batch_window.is_zero() {
                batch
            } else {
                drop(q);
                thread::sleep(config.batch_window);
                let mut q = shared.queue.lock().expect("queue lock");
                while let Some(job) = q.jobs.pop_front() {
                    batch.push(job);
                }
                batch
            }
        };

        // Control jobs run in arrival order relative to nothing in
        // particular — they read state the derive jobs in this batch have
        // already (or not yet) produced; pull them out first.
        let mut derives: Vec<(DeriveRequest, mpsc::Sender<String>)> = Vec::new();
        for job in batch.drain(..) {
            match job.req {
                Request::Derive(d) => derives.push((d, job.reply)),
                Request::Stats { id } => {
                    let resp = Response::Stats {
                        id,
                        server: *shared.counters.lock().expect("counters lock"),
                        tenants: state.registry.all_stats(),
                    };
                    let _ = job.reply.send(resp.to_json_line());
                }
                Request::Shutdown { id } => {
                    let _ = job.reply.send(Response::ShuttingDown { id }.to_json_line());
                    begin_shutdown(&shared, local_addr);
                }
                Request::Ping { id } => {
                    let _ = job.reply.send(Response::Pong { id }.to_json_line());
                }
            }
        }

        // Group by coalescing key; requests whose expression fails to
        // lower get their own singleton group (keyed by error) so the
        // frontend error is reported per request.
        let mut groups: DeriveGroups = Vec::new();
        for (d, reply) in derives {
            let key = if config.coalesce {
                state
                    .canonical_hash(&d.expr)
                    .map(|h| (h, d.grid, d.strategy))
            } else {
                None
            };
            match key {
                Some(k) => {
                    if let Some((_, members)) =
                        groups.iter_mut().find(|(g, _)| g.as_ref() == Some(&k))
                    {
                        members.push((d, reply));
                    } else {
                        groups.push((Some(k), vec![(d, reply)]));
                    }
                }
                None => groups.push((None, vec![(d, reply)])),
            }
        }

        if config.cross_fusion {
            dispatch_cross_fusion(&shared, &mut state, groups);
        } else {
            for (_, members) in groups {
                run_group(&shared, &mut state, members);
            }
        }
    }
}

/// Cross-request fusion dispatch: within one batch, groups of *distinct*
/// expressions sharing a grid and a core strategy are merged into one
/// multi-output network and executed once; everything else (streamed
/// requests, frontend errors, lone groups) falls back to per-group
/// execution.
fn dispatch_cross_fusion(shared: &Shared, state: &mut ExecutorState, groups: DeriveGroups) {
    let mut parts: MergeParts = Vec::new();
    let mut rest: Vec<Vec<PendingDerive>> = Vec::new();
    for (key, members) in groups {
        let mergeable = key.is_some()
            && members[0].0.strategy.core().is_some()
            && state.compiled(&members[0].0.expr).is_some();
        match (mergeable, key) {
            (true, Some((_, grid, strategy))) => {
                if let Some((_, part)) = parts.iter_mut().find(|(k, _)| *k == (grid, strategy)) {
                    part.push(members);
                } else {
                    parts.push(((grid, strategy), vec![members]));
                }
            }
            _ => rest.push(members),
        }
    }
    for ((grid, strategy), part) in parts {
        if part.len() < 2 {
            // Nothing to merge with; run it like any other group.
            rest.extend(part);
            continue;
        }
        run_merged(shared, state, grid, strategy, part);
    }
    for members in rest {
        run_group(shared, state, members);
    }
}

/// Execute several distinct-expression groups as one merged network: union
/// the optimized specs, CSE the shared subgraphs across them, run once on
/// the first member's tenant session, and fan each root's field back out
/// to its own group.
fn run_merged(
    shared: &Shared,
    state: &mut ExecutorState,
    grid: [usize; 3],
    strategy: ExecStrategy,
    part: Vec<Vec<PendingDerive>>,
) {
    let core = strategy
        .core()
        .expect("mergeable groups use core strategies");
    let total: u64 = part.iter().map(|g| g.len() as u64).sum();
    let merge_span = span!(
        shared.tracer,
        "serve.merge",
        groups = part.len(),
        requests = total,
    );
    let specs: Vec<dfg_dataflow::NetworkSpec> = part
        .iter()
        .map(|g| {
            state
                .compiled(&g[0].0.expr)
                .expect("pre-checked by dispatch")
                .spec
                .clone()
        })
        .collect();
    let spec_refs: Vec<&dfg_dataflow::NetworkSpec> = specs.iter().collect();
    let merged = match dfg_dataflow::merge_networks_traced(
        &spec_refs,
        state.level,
        shared.tracer.as_ref(),
    ) {
        Ok(m) => m,
        Err(_) => {
            drop(merge_span);
            for members in part {
                run_group(shared, state, members);
            }
            return;
        }
    };
    shared.count(|c| c.batches += 1);
    let leader = part[0][0].0.tenant.clone();
    let compiles_before = state
        .registry
        .stats(&leader)
        .map(|s| s.session.codegen_compiles)
        .unwrap_or(0);
    let wall = Instant::now();
    let fields = state.fields.entry(grid).or_insert_with(|| {
        let mesh = RectilinearMesh::unit_cube(grid);
        FieldSet::for_rt_mesh(&mesh, &RtWorkload::paper_default())
    });
    let result = state
        .registry
        .derive_network(&leader, &merged.spec, &merged.roots, fields, core);
    let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
    drop(merge_span);
    match result {
        Ok((fields_out, report)) if fields_out.len() == part.len() => {
            let degraded = report.recovery.as_ref().is_some_and(|r| r.degraded);
            let compiles_after = state
                .registry
                .stats(&leader)
                .map(|s| s.session.codegen_compiles)
                .unwrap_or(0);
            let compiles = compiles_after.saturating_sub(compiles_before);
            state
                .registry
                .note_opt_saved(&leader, merged.stats.filters_eliminated() as u64);
            let mut first = true;
            for (group, field) in part.into_iter().zip(fields_out) {
                let checksum: f64 = field.data.iter().map(|&v| v as f64).sum();
                for (d, reply) in group {
                    state.registry.note_merged(&d.tenant);
                    shared.count(|c| {
                        c.ok += 1;
                        c.merged += 1;
                        if degraded {
                            c.degraded += 1;
                        }
                        if !first {
                            c.coalesced += 1;
                        }
                    });
                    let resp = Response::Ok(DeriveReply {
                        id: d.id,
                        tenant: d.tenant.clone(),
                        ncells: field.ncells as u64,
                        checksum,
                        device_ms: report.device_seconds() * 1e3,
                        wall_ms,
                        compiles: if first { compiles } else { 0 },
                        coalesced: !first,
                        batch: total,
                        degraded,
                        data_bits: if d.data {
                            Some(field.data.iter().map(|f| f.to_bits()).collect())
                        } else {
                            None
                        },
                    });
                    let _ = reply.send(resp.to_json_line());
                    first = false;
                }
            }
        }
        _ => {
            // Merged execution failed (e.g. the leader's quota could not
            // hold the union network): fall back to independent per-group
            // execution so errors stay attributed per request.
            for members in part {
                run_group(shared, state, members);
            }
        }
    }
}

fn run_group(
    shared: &Shared,
    state: &mut ExecutorState,
    members: Vec<(DeriveRequest, mpsc::Sender<String>)>,
) {
    let batch_size = members.len() as u64;
    let _batch_span = if batch_size > 1 {
        Some(span!(
            shared.tracer,
            "serve.batch",
            size = batch_size,
            expr = members[0].0.expr.as_str(),
        ))
    } else {
        None
    };
    if batch_size > 1 {
        shared.count(|c| c.batches += 1);
    }

    // If any member wants the payload, the leader computes it once and
    // every follower that asked shares the same bits.
    let want_data = members.iter().any(|(d, _)| d.data);
    let mut leader_payload: Option<DeriveReply> = None;
    for (d, reply) in members {
        if let Some(p) = &leader_payload {
            shared.count(|c| {
                c.ok += 1;
                c.coalesced += 1;
            });
            let resp = Response::Ok(DeriveReply {
                id: d.id,
                tenant: d.tenant.clone(),
                compiles: 0,
                coalesced: true,
                batch: batch_size,
                data_bits: if d.data { p.data_bits.clone() } else { None },
                ..p.clone()
            });
            let _ = reply.send(resp.to_json_line());
            continue;
        }
        // Leader (or retry after a failed leader): execute on this
        // member's own tenant so errors stay attributed per request.
        let resp = run_one(shared, state, &d, batch_size, want_data);
        let resp = match resp {
            Response::Ok(r) => {
                leader_payload = Some(r.clone());
                let mut own = r;
                if !d.data {
                    own.data_bits = None;
                }
                Response::Ok(own)
            }
            other => other,
        };
        let _ = reply.send(resp.to_json_line());
    }
}

fn run_one(
    shared: &Shared,
    state: &mut ExecutorState,
    d: &DeriveRequest,
    batch_size: u64,
    want_data: bool,
) -> Response {
    let _span = span!(
        shared.tracer,
        "serve.request",
        tenant = d.tenant.as_str(),
        expr = d.expr.as_str(),
        strategy = d.strategy.as_str(),
    );
    let compiles_before = state
        .registry
        .stats(&d.tenant)
        .map(|s| s.session.codegen_compiles)
        .unwrap_or(0);
    let wall = Instant::now();
    let fields = state.fields.entry(d.grid).or_insert_with(|| {
        let mesh = RectilinearMesh::unit_cube(d.grid);
        FieldSet::for_rt_mesh(&mesh, &RtWorkload::paper_default())
    });
    let result = match d.strategy.core() {
        Some(s) => state.registry.derive(&d.tenant, &d.expr, fields, s),
        None => state
            .registry
            .derive_streamed(&d.tenant, &d.expr, fields, None),
    };
    let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
    match result {
        Ok(report) => {
            let degraded = report.recovery.as_ref().is_some_and(|r| r.degraded);
            let field = report.field.as_ref().expect("real-mode serve");
            let checksum: f64 = field.data.iter().map(|&v| v as f64).sum();
            let compiles_after = state
                .registry
                .stats(&d.tenant)
                .map(|s| s.session.codegen_compiles)
                .unwrap_or(0);
            shared.count(|c| {
                c.ok += 1;
                if degraded {
                    c.degraded += 1;
                }
            });
            Response::Ok(DeriveReply {
                id: d.id,
                tenant: d.tenant.clone(),
                ncells: field.ncells as u64,
                checksum,
                device_ms: report.device_seconds() * 1e3,
                wall_ms,
                compiles: compiles_after.saturating_sub(compiles_before),
                coalesced: false,
                batch: batch_size,
                degraded,
                data_bits: if want_data {
                    Some(field.data.iter().map(|f| f.to_bits()).collect())
                } else {
                    None
                },
            })
        }
        Err(e) if e.is_out_of_memory() => {
            shared.count(|c| c.rejected_quota += 1);
            drop(span!(
                shared.tracer,
                "serve.reject",
                reason = "quota_exceeded",
                tenant = d.tenant.as_str(),
            ));
            Response::Rejected {
                id: d.id,
                kind: RejectKind::QuotaExceeded,
                message: format!("tenant `{}` exceeded its device-memory quota", d.tenant),
            }
        }
        Err(e) => {
            shared.count(|c| c.errors += 1);
            Response::Error {
                id: d.id,
                message: e.to_string(),
            }
        }
    }
}
