//! The wire protocol: line-delimited JSON requests and responses.
//!
//! Every message is one JSON object on one line, terminated by `\n` — no
//! external serialisation crate, no framing beyond the newline. Requests
//! carry an `op` tag and a client-chosen `id` that the server echoes back,
//! so a client may pipeline many requests on one connection and match
//! replies by id (replies to one connection come back in submission
//! order). The full grammar is specified in `docs/SERVING.md`.
//!
//! Derived-field payloads cross the wire as **f32 bit patterns**
//! (`data_bits`, an array of `u32`), not decimal floats: integers below
//! 2^53 round-trip exactly through the JSON number grammar, so a client
//! reassembling `f32::from_bits` sees bit-identical results to a local
//! engine run.
//!
//! # Examples
//!
//! ```
//! use dfg_serve::{Request, DeriveRequest, ExecStrategy};
//!
//! let req = Request::Derive(DeriveRequest {
//!     id: 7,
//!     tenant: "alice".into(),
//!     expr: "m = sqrt(u*u + v*v)".into(),
//!     grid: [8, 8, 8],
//!     strategy: ExecStrategy::Fusion,
//!     data: false,
//!     deadline_ms: Some(250),
//! });
//! let line = req.to_json_line();
//! assert!(line.ends_with('\n'));
//! assert_eq!(Request::parse(line.trim()).unwrap(), req);
//! ```

use dfg_core::TenantStats;
use dfg_trace::json::{self, Value};

/// Execution strategy requested on the wire. Mirrors
/// [`dfg_core::Strategy`] plus the streamed (slab-partitioned) execution
/// path, which the engine exposes as a separate entry point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecStrategy {
    /// Whole-network fused kernel (the paper's headline strategy).
    Fusion,
    /// One kernel per filter, device-resident intermediates.
    Staged,
    /// One kernel per filter, host round-trips between filters.
    Roundtrip,
    /// Fused kernel over slab partitions under a device-memory budget.
    Streamed,
}

impl ExecStrategy {
    /// Wire name (`fusion` | `staged` | `roundtrip` | `streamed`).
    pub fn as_str(self) -> &'static str {
        match self {
            ExecStrategy::Fusion => "fusion",
            ExecStrategy::Staged => "staged",
            ExecStrategy::Roundtrip => "roundtrip",
            ExecStrategy::Streamed => "streamed",
        }
    }

    /// Parse a wire name.
    pub fn parse(name: &str) -> Result<Self, String> {
        match name {
            "fusion" => Ok(ExecStrategy::Fusion),
            "staged" => Ok(ExecStrategy::Staged),
            "roundtrip" => Ok(ExecStrategy::Roundtrip),
            "streamed" => Ok(ExecStrategy::Streamed),
            other => Err(format!(
                "unknown strategy `{other}` (fusion|staged|roundtrip|streamed)"
            )),
        }
    }

    /// The core strategy this maps to, or `None` for streamed execution.
    pub fn core(self) -> Option<dfg_core::Strategy> {
        match self {
            ExecStrategy::Fusion => Some(dfg_core::Strategy::Fusion),
            ExecStrategy::Staged => Some(dfg_core::Strategy::Staged),
            ExecStrategy::Roundtrip => Some(dfg_core::Strategy::Roundtrip),
            ExecStrategy::Streamed => None,
        }
    }
}

/// A derive request: compile (or reuse) the kernel for `expr` and execute
/// it over the synthetic Rayleigh–Taylor workload on a `grid`-sized mesh.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeriveRequest {
    /// Client-chosen id, echoed in the reply.
    pub id: u64,
    /// Tenant this request runs as (selects the server-side session).
    pub tenant: String,
    /// Derived-field expression, e.g. `"m = sqrt(u*u + v*v)"`.
    pub expr: String,
    /// Mesh dimensions `[nx, ny, nz]`.
    pub grid: [usize; 3],
    /// Execution strategy.
    pub strategy: ExecStrategy,
    /// Whether to return the full field as `data_bits` (bit-exact f32).
    pub data: bool,
    /// Optional deadline, in milliseconds from the moment the server
    /// admits the request. An expired request is dropped — at dequeue or
    /// between recovery-ladder rungs — with a `deadline_exceeded` reply
    /// instead of being executed. `None` falls back to the server's
    /// default deadline (which may itself be "none").
    pub deadline_ms: Option<u64>,
}

/// A client→server message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Execute a derived-field expression.
    Derive(DeriveRequest),
    /// Fetch server counters and per-tenant stats.
    Stats {
        /// Client-chosen id, echoed in the reply.
        id: u64,
    },
    /// Liveness probe.
    Ping {
        /// Client-chosen id, echoed in the reply.
        id: u64,
    },
    /// Ask the server to drain and exit.
    Shutdown {
        /// Client-chosen id, echoed in the reply.
        id: u64,
    },
}

impl Request {
    /// Encode as one newline-terminated JSON line.
    pub fn to_json_line(&self) -> String {
        match self {
            Request::Derive(d) => {
                let deadline = match d.deadline_ms {
                    Some(ms) => format!(",\"deadline_ms\":{ms}"),
                    None => String::new(),
                };
                format!(
                    "{{\"op\":\"derive\",\"id\":{},\"tenant\":\"{}\",\"expr\":\"{}\",\
                     \"grid\":[{},{},{}],\"strategy\":\"{}\",\"data\":{}{}}}\n",
                    d.id,
                    json::escape(&d.tenant),
                    json::escape(&d.expr),
                    d.grid[0],
                    d.grid[1],
                    d.grid[2],
                    d.strategy.as_str(),
                    d.data,
                    deadline,
                )
            }
            Request::Stats { id } => format!("{{\"op\":\"stats\",\"id\":{id}}}\n"),
            Request::Ping { id } => format!("{{\"op\":\"ping\",\"id\":{id}}}\n"),
            Request::Shutdown { id } => format!("{{\"op\":\"shutdown\",\"id\":{id}}}\n"),
        }
    }

    /// Parse one request line (without the trailing newline).
    pub fn parse(line: &str) -> Result<Request, String> {
        let v = json::parse(line)?;
        let op = v
            .get("op")
            .and_then(Value::as_str)
            .ok_or("missing \"op\"")?;
        let id = v
            .get("id")
            .and_then(Value::as_f64)
            .ok_or("missing numeric \"id\"")? as u64;
        match op {
            "stats" => Ok(Request::Stats { id }),
            "ping" => Ok(Request::Ping { id }),
            "shutdown" => Ok(Request::Shutdown { id }),
            "derive" => {
                let tenant = v
                    .get("tenant")
                    .and_then(Value::as_str)
                    .ok_or("derive: missing \"tenant\"")?
                    .to_string();
                let expr = v
                    .get("expr")
                    .and_then(Value::as_str)
                    .ok_or("derive: missing \"expr\"")?
                    .to_string();
                let grid_v = v
                    .get("grid")
                    .and_then(Value::as_array)
                    .ok_or("derive: missing \"grid\" array")?;
                if grid_v.len() != 3 {
                    return Err("derive: \"grid\" must be [nx, ny, nz]".into());
                }
                let mut grid = [0usize; 3];
                for (slot, item) in grid.iter_mut().zip(grid_v) {
                    let n = item.as_f64().ok_or("derive: non-numeric grid dim")?;
                    if n < 1.0 || n != n.trunc() {
                        return Err("derive: grid dims must be positive integers".into());
                    }
                    *slot = n as usize;
                }
                let strategy = match v.get("strategy").and_then(Value::as_str) {
                    Some(name) => ExecStrategy::parse(name)?,
                    None => ExecStrategy::Fusion,
                };
                let data = matches!(v.get("data"), Some(Value::Bool(true)));
                let deadline_ms = match v.get("deadline_ms") {
                    None | Some(Value::Null) => None,
                    Some(val) => {
                        let n = val.as_f64().ok_or("derive: non-numeric \"deadline_ms\"")?;
                        if !n.is_finite() || n < 0.0 || n != n.trunc() {
                            return Err(
                                "derive: \"deadline_ms\" must be a non-negative integer".into()
                            );
                        }
                        Some(n as u64)
                    }
                };
                Ok(Request::Derive(DeriveRequest {
                    id,
                    tenant,
                    expr,
                    grid,
                    strategy,
                    data,
                    deadline_ms,
                }))
            }
            other => Err(format!("unknown op `{other}`")),
        }
    }

    /// Best-effort extraction of the client-chosen `id` from a frame that
    /// failed [`Request::parse`], so a malformed-frame error reply can
    /// still echo it and the client can match the failure to its request.
    /// Returns `None` when the line is not JSON or carries no numeric id.
    pub fn frame_id(line: &str) -> Option<u64> {
        let v = json::parse(line).ok()?;
        let id = v.get("id")?.as_f64()?;
        (id.is_finite() && id >= 0.0).then_some(id as u64)
    }
}

/// Why a request was rejected without being executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectKind {
    /// The bounded request queue was full (backpressure).
    Overloaded,
    /// The tenant's device-memory quota could not accommodate the request.
    QuotaExceeded,
    /// The server is draining; no new work is accepted.
    ShuttingDown,
    /// The request frame exceeded the server's line-byte cap.
    TooLarge,
    /// The request's deadline passed before (or while) it executed.
    DeadlineExceeded,
}

impl RejectKind {
    /// Wire status string.
    pub fn as_str(self) -> &'static str {
        match self {
            RejectKind::Overloaded => "overloaded",
            RejectKind::QuotaExceeded => "quota_exceeded",
            RejectKind::ShuttingDown => "shutting_down",
            RejectKind::TooLarge => "too_large",
            RejectKind::DeadlineExceeded => "deadline_exceeded",
        }
    }
}

/// A successful derive reply.
#[derive(Debug, Clone, PartialEq)]
pub struct DeriveReply {
    /// Echo of the request id.
    pub id: u64,
    /// Echo of the tenant id.
    pub tenant: String,
    /// Echo of the expression the server actually executed. Clients
    /// compare this against what they sent: a transport-level mutation
    /// that still parses as a valid request (one bit flipped inside the
    /// expression text, say) is otherwise undetectable server-side.
    pub expr: String,
    /// Cells in the derived field.
    pub ncells: u64,
    /// Sum of the derived field's values (always present; cheap parity
    /// check when `data_bits` was not requested).
    pub checksum: f64,
    /// Modeled device milliseconds for this request's execution.
    pub device_ms: f64,
    /// Wall-clock milliseconds spent executing (not queueing).
    pub wall_ms: f64,
    /// Kernel compiles this request actually triggered (0 on cache hit or
    /// when coalesced behind another tenant's identical request).
    pub compiles: u64,
    /// Whether this reply was served from another request's execution.
    pub coalesced: bool,
    /// Number of requests in the coalesced batch this one belonged to.
    pub batch: u64,
    /// Whether the request completed in a degraded mode (recovery ladder).
    pub degraded: bool,
    /// Bit patterns of the derived f32 field, if `data: true` was asked.
    pub data_bits: Option<Vec<u32>>,
    /// Seeded checksum over `data_bits` (see
    /// [`dfg_ocl::integrity::checksum_bits`] with
    /// [`dfg_ocl::integrity::PAYLOAD_SUM_SEED`]), present whenever
    /// `data_bits` is. Carried on the wire as a decimal string — a u64
    /// does not survive the JSON f64 number grammar — so a client can
    /// detect a payload garbled in flight and re-fetch.
    pub payload_sum: Option<u64>,
}

/// Aggregate server counters reported by `stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerCounters {
    /// Requests accepted off the wire (all ops).
    pub requests: u64,
    /// Derive requests completed successfully.
    pub ok: u64,
    /// Requests rejected by admission control (queue full).
    pub rejected_overload: u64,
    /// Requests rejected because the tenant's quota was exceeded.
    pub rejected_quota: u64,
    /// Requests that failed with an execution error.
    pub errors: u64,
    /// Coalesced batches executed.
    pub batches: u64,
    /// Requests served as followers of a coalesced batch.
    pub coalesced: u64,
    /// Requests served by a merged cross-request network (distinct
    /// expressions sharing subgraphs, compiled and run as one).
    pub merged: u64,
    /// Requests that completed degraded via the recovery ladder.
    pub degraded: u64,
    /// Frames rejected for exceeding the request-line byte cap.
    pub rejected_too_large: u64,
    /// Requests rejected because their deadline expired before completion.
    pub rejected_deadline: u64,
    /// Executions aborted mid-flight because the client disconnected.
    pub cancelled: u64,
    /// Tenant sessions evicted by the idle TTL.
    pub evicted_idle: u64,
    /// Tenant sessions evicted by the memory-pressure watchdog (LRU).
    pub evicted_pressure: u64,
    /// Frames that failed to parse (answered with an error, not executed).
    pub malformed: u64,
}

/// A server→client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Derive completed; payload attached.
    Ok(DeriveReply),
    /// Reply to `ping`.
    Pong {
        /// Echo of the request id.
        id: u64,
    },
    /// Reply to `stats`.
    Stats {
        /// Echo of the request id.
        id: u64,
        /// Aggregate server counters.
        server: ServerCounters,
        /// Per-tenant counters, sorted by tenant id.
        tenants: Vec<TenantStats>,
    },
    /// Shutdown acknowledged; the server is draining.
    ShuttingDown {
        /// Echo of the request id.
        id: u64,
    },
    /// Request rejected without execution.
    Rejected {
        /// Echo of the request id.
        id: u64,
        /// Why it was rejected.
        kind: RejectKind,
        /// Human-readable detail.
        message: String,
    },
    /// Request failed while executing.
    Error {
        /// Echo of the request id.
        id: u64,
        /// Error description.
        message: String,
    },
}

/// JSON has no lexeme for non-finite numbers. A `checksum` computed over a
/// payload that contains Inf or NaN (a garbled request can decode Inf f32
/// inputs and still execute) is encoded as `null` rather than panicking the
/// encoder; [`Response::parse`] decodes that `null` back to NaN.
fn wire_f64(x: f64) -> String {
    if x.is_finite() {
        json::number(x)
    } else {
        "null".to_string()
    }
}

fn tenant_stats_json(t: &TenantStats) -> String {
    format!(
        "{{\"tenant\":\"{}\",\"cycles\":{},\"uploads\":{},\"uploads_skipped\":{},\
         \"codegen_compiles\":{},\"codegen_cached\":{},\"merged\":{},\
         \"opt_saved_kernels\":{},\"integrity_healed\":{},\"pool_hits\":{},\
         \"pooled_bytes\":{},\"resident_bytes\":{},\"in_use_bytes\":{},\
         \"quota_bytes\":{},\"integrity_checks\":{},\"integrity_violations\":{},\
         \"idle_ms\":{}}}",
        json::escape(&t.tenant),
        t.session.cycles,
        t.session.uploads,
        t.session.uploads_skipped,
        t.session.codegen_compiles,
        t.session.codegen_cached,
        t.session.merged,
        t.session.opt_saved_kernels,
        t.session.integrity_healed,
        t.pool_hits,
        t.pooled_bytes,
        t.resident_bytes,
        t.in_use_bytes,
        t.quota_bytes,
        t.integrity_checks,
        t.integrity_violations,
        t.idle_ms,
    )
}

fn tenant_stats_parse(v: &Value) -> Result<TenantStats, String> {
    let num = |key: &str| -> Result<u64, String> {
        v.get(key)
            .and_then(Value::as_f64)
            .map(|n| n as u64)
            .ok_or_else(|| format!("stats: missing numeric \"{key}\""))
    };
    Ok(TenantStats {
        tenant: v
            .get("tenant")
            .and_then(Value::as_str)
            .ok_or("stats: missing \"tenant\"")?
            .to_string(),
        session: dfg_core::SessionStats {
            cycles: num("cycles")?,
            uploads: num("uploads")?,
            uploads_skipped: num("uploads_skipped")?,
            codegen_compiles: num("codegen_compiles")?,
            codegen_cached: num("codegen_cached")?,
            merged: num("merged")?,
            opt_saved_kernels: num("opt_saved_kernels")?,
            integrity_healed: num("integrity_healed")?,
        },
        pool_hits: num("pool_hits")?,
        pooled_bytes: num("pooled_bytes")?,
        resident_bytes: num("resident_bytes")?,
        in_use_bytes: num("in_use_bytes")?,
        quota_bytes: num("quota_bytes")?,
        integrity_checks: num("integrity_checks")?,
        integrity_violations: num("integrity_violations")?,
        idle_ms: num("idle_ms")?,
    })
}

impl Response {
    /// Encode as one newline-terminated JSON line.
    pub fn to_json_line(&self) -> String {
        match self {
            Response::Ok(r) => {
                let mut line = format!(
                    "{{\"status\":\"ok\",\"id\":{},\"tenant\":\"{}\",\"expr\":\"{}\",\
                     \"ncells\":{},\
                     \"checksum\":{},\"device_ms\":{},\"wall_ms\":{},\"compiles\":{},\
                     \"coalesced\":{},\"batch\":{},\"degraded\":{}",
                    r.id,
                    json::escape(&r.tenant),
                    json::escape(&r.expr),
                    r.ncells,
                    wire_f64(r.checksum),
                    wire_f64(r.device_ms),
                    wire_f64(r.wall_ms),
                    r.compiles,
                    r.coalesced,
                    r.batch,
                    r.degraded,
                );
                if let Some(sum) = r.payload_sum {
                    line.push_str(&format!(",\"payload_sum\":\"{sum}\""));
                }
                if let Some(bits) = &r.data_bits {
                    line.push_str(",\"data_bits\":[");
                    for (i, b) in bits.iter().enumerate() {
                        if i > 0 {
                            line.push(',');
                        }
                        line.push_str(&b.to_string());
                    }
                    line.push(']');
                }
                line.push_str("}\n");
                line
            }
            Response::Pong { id } => format!("{{\"status\":\"pong\",\"id\":{id}}}\n"),
            Response::Stats {
                id,
                server,
                tenants,
            } => {
                let tenants_json: Vec<String> = tenants.iter().map(tenant_stats_json).collect();
                format!(
                    "{{\"status\":\"stats\",\"id\":{},\"server\":{{\"requests\":{},\
                     \"ok\":{},\"rejected_overload\":{},\"rejected_quota\":{},\
                     \"errors\":{},\"batches\":{},\"coalesced\":{},\"merged\":{},\
                     \"degraded\":{},\"rejected_too_large\":{},\"rejected_deadline\":{},\
                     \"cancelled\":{},\"evicted_idle\":{},\"evicted_pressure\":{},\
                     \"malformed\":{}}},\"tenants\":[{}]}}\n",
                    id,
                    server.requests,
                    server.ok,
                    server.rejected_overload,
                    server.rejected_quota,
                    server.errors,
                    server.batches,
                    server.coalesced,
                    server.merged,
                    server.degraded,
                    server.rejected_too_large,
                    server.rejected_deadline,
                    server.cancelled,
                    server.evicted_idle,
                    server.evicted_pressure,
                    server.malformed,
                    tenants_json.join(","),
                )
            }
            Response::ShuttingDown { id } => {
                format!("{{\"status\":\"shutting_down\",\"id\":{id}}}\n")
            }
            Response::Rejected { id, kind, message } => format!(
                "{{\"status\":\"{}\",\"id\":{},\"message\":\"{}\"}}\n",
                kind.as_str(),
                id,
                json::escape(message),
            ),
            Response::Error { id, message } => format!(
                "{{\"status\":\"error\",\"id\":{},\"message\":\"{}\"}}\n",
                id,
                json::escape(message),
            ),
        }
    }

    /// Parse one response line (without the trailing newline).
    pub fn parse(line: &str) -> Result<Response, String> {
        let v = json::parse(line)?;
        let status = v
            .get("status")
            .and_then(Value::as_str)
            .ok_or("missing \"status\"")?;
        let id = v
            .get("id")
            .and_then(Value::as_f64)
            .ok_or("missing numeric \"id\"")? as u64;
        let message = || {
            v.get("message")
                .and_then(Value::as_str)
                .unwrap_or("")
                .to_string()
        };
        match status {
            "pong" => Ok(Response::Pong { id }),
            "shutting_down" => {
                if v.get("message").is_some() {
                    Ok(Response::Rejected {
                        id,
                        kind: RejectKind::ShuttingDown,
                        message: message(),
                    })
                } else {
                    Ok(Response::ShuttingDown { id })
                }
            }
            "overloaded" => Ok(Response::Rejected {
                id,
                kind: RejectKind::Overloaded,
                message: message(),
            }),
            "quota_exceeded" => Ok(Response::Rejected {
                id,
                kind: RejectKind::QuotaExceeded,
                message: message(),
            }),
            "too_large" => Ok(Response::Rejected {
                id,
                kind: RejectKind::TooLarge,
                message: message(),
            }),
            "deadline_exceeded" => Ok(Response::Rejected {
                id,
                kind: RejectKind::DeadlineExceeded,
                message: message(),
            }),
            "error" => Ok(Response::Error {
                id,
                message: message(),
            }),
            "stats" => {
                let s = v.get("server").ok_or("stats: missing \"server\"")?;
                let num = |key: &str| -> Result<u64, String> {
                    s.get(key)
                        .and_then(Value::as_f64)
                        .map(|n| n as u64)
                        .ok_or_else(|| format!("stats: missing \"{key}\""))
                };
                let server = ServerCounters {
                    requests: num("requests")?,
                    ok: num("ok")?,
                    rejected_overload: num("rejected_overload")?,
                    rejected_quota: num("rejected_quota")?,
                    errors: num("errors")?,
                    batches: num("batches")?,
                    coalesced: num("coalesced")?,
                    merged: num("merged")?,
                    degraded: num("degraded")?,
                    rejected_too_large: num("rejected_too_large")?,
                    rejected_deadline: num("rejected_deadline")?,
                    cancelled: num("cancelled")?,
                    evicted_idle: num("evicted_idle")?,
                    evicted_pressure: num("evicted_pressure")?,
                    malformed: num("malformed")?,
                };
                let tenants = v
                    .get("tenants")
                    .and_then(Value::as_array)
                    .ok_or("stats: missing \"tenants\"")?
                    .iter()
                    .map(tenant_stats_parse)
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Response::Stats {
                    id,
                    server,
                    tenants,
                })
            }
            "ok" => {
                let num = |key: &str| -> Result<f64, String> {
                    v.get(key)
                        .and_then(Value::as_f64)
                        .ok_or_else(|| format!("ok: missing numeric \"{key}\""))
                };
                // Non-finite values are encoded as `null` (see `wire_f64`);
                // decode them back to NaN rather than failing the frame.
                let lenient = |key: &str| -> Result<f64, String> {
                    match v.get(key) {
                        Some(Value::Null) => Ok(f64::NAN),
                        _ => num(key),
                    }
                };
                let payload_sum = match v.get("payload_sum") {
                    None | Some(Value::Null) => None,
                    Some(Value::String(s)) => Some(
                        s.parse::<u64>()
                            .map_err(|_| "ok: \"payload_sum\" is not a u64".to_string())?,
                    ),
                    Some(_) => return Err("ok: \"payload_sum\" must be a string".into()),
                };
                let data_bits = match v.get("data_bits").and_then(Value::as_array) {
                    Some(items) => Some(
                        items
                            .iter()
                            .map(|b| {
                                b.as_f64()
                                    .map(|n| n as u32)
                                    .ok_or("ok: non-numeric data_bits entry".to_string())
                            })
                            .collect::<Result<Vec<_>, _>>()?,
                    ),
                    None => None,
                };
                Ok(Response::Ok(DeriveReply {
                    id,
                    tenant: v
                        .get("tenant")
                        .and_then(Value::as_str)
                        .unwrap_or("")
                        .to_string(),
                    expr: v
                        .get("expr")
                        .and_then(Value::as_str)
                        .unwrap_or("")
                        .to_string(),
                    ncells: num("ncells")? as u64,
                    checksum: lenient("checksum")?,
                    device_ms: lenient("device_ms")?,
                    wall_ms: lenient("wall_ms")?,
                    compiles: num("compiles")? as u64,
                    coalesced: matches!(v.get("coalesced"), Some(Value::Bool(true))),
                    batch: num("batch")? as u64,
                    degraded: matches!(v.get("degraded"), Some(Value::Bool(true))),
                    data_bits,
                    payload_sum,
                }))
            }
            other => Err(format!("unknown status `{other}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_request_round_trips() {
        for deadline_ms in [None, Some(0), Some(250)] {
            let req = Request::Derive(DeriveRequest {
                id: 42,
                tenant: "te\"nant".into(),
                expr: "m = u*v".into(),
                grid: [16, 8, 4],
                strategy: ExecStrategy::Staged,
                data: true,
                deadline_ms,
            });
            let line = req.to_json_line();
            assert_eq!(Request::parse(line.trim()).unwrap(), req);
        }
    }

    #[test]
    fn deadline_must_be_a_nonnegative_integer() {
        let frame = |d: &str| {
            format!(
                r#"{{"op":"derive","id":1,"tenant":"t","expr":"m = u","grid":[4,4,4],"deadline_ms":{d}}}"#
            )
        };
        assert!(Request::parse(&frame("-1")).is_err());
        assert!(Request::parse(&frame("1.5")).is_err());
        assert!(Request::parse(&frame("\"soon\"")).is_err());
        // `null` is treated as absent.
        match Request::parse(&frame("null")).unwrap() {
            Request::Derive(d) => assert_eq!(d.deadline_ms, None),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn frame_id_recovers_ids_from_malformed_frames() {
        assert_eq!(Request::frame_id(r#"{"op":"nope","id":9}"#), Some(9));
        assert_eq!(Request::frame_id(r#"{"op":"derive","id":3}"#), Some(3));
        assert_eq!(Request::frame_id(r#"{"op":"derive"}"#), None);
        assert_eq!(Request::frame_id("not json at all"), None);
        assert_eq!(Request::frame_id(r#"{"id":-5}"#), None);
    }

    #[test]
    fn control_requests_round_trip() {
        for req in [
            Request::Stats { id: 1 },
            Request::Ping { id: 2 },
            Request::Shutdown { id: 3 },
        ] {
            let line = req.to_json_line();
            assert_eq!(Request::parse(line.trim()).unwrap(), req);
        }
    }

    #[test]
    fn derive_defaults_strategy_and_data() {
        let req =
            Request::parse(r#"{"op":"derive","id":1,"tenant":"t","expr":"m = u","grid":[4,4,4]}"#)
                .unwrap();
        match req {
            Request::Derive(d) => {
                assert_eq!(d.strategy, ExecStrategy::Fusion);
                assert!(!d.data);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(Request::parse("{}").is_err());
        assert!(Request::parse(r#"{"op":"derive","id":1}"#).is_err());
        assert!(
            Request::parse(r#"{"op":"derive","id":1,"tenant":"t","expr":"m=u","grid":[4,4]}"#)
                .is_err()
        );
        assert!(Request::parse(r#"{"op":"nope","id":1}"#).is_err());
    }

    #[test]
    fn ok_response_round_trips_data_bits_exactly() {
        let bits: Vec<u32> = [1.5f32, -0.0, f32::MIN_POSITIVE, 3.0e30]
            .iter()
            .map(|f| f.to_bits())
            .collect();
        let resp = Response::Ok(DeriveReply {
            id: 9,
            tenant: "a".into(),
            expr: "m = u*v".into(),
            ncells: 4,
            checksum: 2.5,
            device_ms: 0.125,
            wall_ms: 1.5,
            compiles: 1,
            coalesced: true,
            batch: 3,
            degraded: false,
            data_bits: Some(bits.clone()),
            payload_sum: Some(dfg_ocl::integrity::checksum_bits(
                dfg_ocl::integrity::PAYLOAD_SUM_SEED,
                &bits,
            )),
        });
        let line = resp.to_json_line();
        match Response::parse(line.trim()).unwrap() {
            Response::Ok(r) => {
                assert_eq!(r.data_bits.as_deref(), Some(&bits[..]));
                assert_eq!(r.expr, "m = u*v", "expr echo must round-trip");
                assert_eq!(
                    r.payload_sum,
                    Some(dfg_ocl::integrity::checksum_bits(
                        dfg_ocl::integrity::PAYLOAD_SUM_SEED,
                        &bits,
                    )),
                    "payload_sum must round-trip exactly (u64, not f64)",
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn payload_sum_survives_full_u64_range() {
        // A sum above 2^53 would be silently rounded if carried as a JSON
        // number; the string encoding must round-trip it bit-exactly.
        let resp = Response::Ok(DeriveReply {
            id: 1,
            tenant: "a".into(),
            expr: "m = u".into(),
            ncells: 1,
            checksum: 0.0,
            device_ms: 0.0,
            wall_ms: 0.0,
            compiles: 0,
            coalesced: false,
            batch: 1,
            degraded: false,
            data_bits: None,
            payload_sum: Some(u64::MAX - 12345),
        });
        let line = resp.to_json_line();
        assert_eq!(Response::parse(line.trim()).unwrap(), resp);
    }

    #[test]
    fn non_finite_checksum_encodes_without_panicking() {
        // Garbled requests can decode Inf f32 inputs; summing the derived
        // field then yields a non-finite checksum, which JSON cannot carry
        // as a number. The encoder must not panic and the decoder must
        // surface NaN rather than reject the frame.
        let resp = Response::Ok(DeriveReply {
            id: 2,
            tenant: "a".into(),
            expr: "m = u".into(),
            ncells: 8,
            checksum: f64::INFINITY,
            device_ms: 0.5,
            wall_ms: 0.5,
            compiles: 0,
            coalesced: false,
            batch: 1,
            degraded: false,
            data_bits: None,
            payload_sum: None,
        });
        let line = resp.to_json_line();
        assert!(line.contains("\"checksum\":null"));
        match Response::parse(line.trim()).unwrap() {
            Response::Ok(r) => assert!(r.checksum.is_nan()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn stats_response_round_trips() {
        let resp = Response::Stats {
            id: 5,
            server: ServerCounters {
                requests: 10,
                ok: 8,
                rejected_overload: 1,
                rejected_quota: 1,
                errors: 0,
                batches: 4,
                coalesced: 3,
                merged: 2,
                degraded: 1,
                rejected_too_large: 1,
                rejected_deadline: 2,
                cancelled: 1,
                evicted_idle: 1,
                evicted_pressure: 1,
                malformed: 4,
            },
            tenants: vec![TenantStats {
                tenant: "a".into(),
                session: dfg_core::SessionStats {
                    cycles: 8,
                    uploads: 7,
                    uploads_skipped: 35,
                    codegen_compiles: 1,
                    codegen_cached: 7,
                    merged: 2,
                    opt_saved_kernels: 5,
                    integrity_healed: 1,
                },
                pool_hits: 6,
                pooled_bytes: 1024,
                resident_bytes: 2048,
                in_use_bytes: 2048,
                quota_bytes: 1 << 20,
                integrity_checks: 12,
                integrity_violations: 1,
                idle_ms: 1500,
            }],
        };
        let line = resp.to_json_line();
        assert_eq!(Response::parse(line.trim()).unwrap(), resp);
    }

    #[test]
    fn rejections_round_trip() {
        for (resp, tag) in [
            (
                Response::Rejected {
                    id: 1,
                    kind: RejectKind::Overloaded,
                    message: "queue full".into(),
                },
                "overloaded",
            ),
            (
                Response::Rejected {
                    id: 2,
                    kind: RejectKind::QuotaExceeded,
                    message: "quota".into(),
                },
                "quota_exceeded",
            ),
            (
                Response::Rejected {
                    id: 3,
                    kind: RejectKind::TooLarge,
                    message: "frame over 64 KiB".into(),
                },
                "too_large",
            ),
            (
                Response::Rejected {
                    id: 4,
                    kind: RejectKind::DeadlineExceeded,
                    message: "deadline passed in queue".into(),
                },
                "deadline_exceeded",
            ),
        ] {
            let line = resp.to_json_line();
            assert!(line.contains(tag));
            assert_eq!(Response::parse(line.trim()).unwrap(), resp);
        }
    }
}
