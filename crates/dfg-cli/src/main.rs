//! `dfgc` — the derived-field generation command-line tool.
//!
//! ```text
//! dfgc run   --expr "v_mag = sqrt(u*u + v*v + w*w)" [--grid 64x64x64 | --input in.vtk]
//!            [--strategy fusion|staged|roundtrip|streamed] [--device cpu|gpu]
//!            [--output out.vtk] [--render slice.ppm] [--trace trace.json]
//! dfgc plan  --expr "<expression>" --grid NXxNYxNZ
//! dfgc profile "<expression>"            # trace every strategy, emit Chrome traces
//! dfgc insitu [--cycles 16]              # persistent-session hot loop over the flow solver
//! dfgc parse --expr "<expression>"       # print network + generated source
//! dfgc serve [--addr 127.0.0.1:7117]     # multi-tenant service (docs/SERVING.md)
//! dfgc bench-clients --addr HOST:PORT    # load-drive a running server
//! dfgc info                              # devices and the Table I catalog
//! ```
//!
//! Distributed runs ride the `run` subcommand: `dfgc run --ranks <n>`
//! adds `--blocks`, `--workload`, `--mode`, `--deadline-ms`, and the
//! fault-injection flags (`--faults`, `--max-retries`, `--fallback`).

use std::process::ExitCode;

mod cli;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match cli::dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("dfgc: {e}");
            eprintln!();
            eprintln!("{}", cli::USAGE);
            ExitCode::FAILURE
        }
    }
}

/// Argument helpers shared with the unit tests.
pub(crate) fn parse_grid(s: &str) -> Result<[usize; 3], String> {
    let parts: Vec<&str> = s.split(['x', 'X']).collect();
    if parts.len() != 3 {
        return Err(format!("grid must be NXxNYxNZ, got `{s}`"));
    }
    let mut dims = [0usize; 3];
    for (d, p) in parts.iter().enumerate() {
        dims[d] = p
            .parse::<usize>()
            .map_err(|_| format!("bad grid extent `{p}`"))?;
        if dims[d] == 0 {
            return Err("grid extents must be positive".into());
        }
    }
    Ok(dims)
}
