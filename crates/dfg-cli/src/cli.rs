//! Subcommand dispatch and implementations.

use std::collections::HashMap;

use dfg_cluster::render::render_slice;
use dfg_core::{plan, Engine, EngineOptions, FieldSet, Strategy};
use dfg_dataflow::Width;
use dfg_expr::compile;
use dfg_kernels_shim::generated_source_of;
use dfg_mesh::{RectilinearMesh, RtWorkload, TABLE1_CATALOG};
use dfg_ocl::{DeviceProfile, ExecMode};
use dfg_sim::FlowSimulation;
use dfg_trace::Tracer;
use dfg_vtk::io::{read_vtk, write_vtk};
use dfg_vtk::{DataArray, RectilinearDataset};

use crate::parse_grid;

/// Format an engine error, rendering parse failures as caret diagnostics.
fn pretty_engine_err(e: &dfg_core::EngineError, source: &str) -> String {
    if let dfg_core::EngineError::Frontend(dfg_expr::FrontendError::Parse(p)) = e {
        format!("\n{}", p.render(source))
    } else {
        e.to_string()
    }
}

/// Usage text printed on errors.
pub const USAGE: &str = "\
usage:
  dfgc run   --expr <program> [--expr-file <path>]
             [--grid NXxNYxNZ | --input <in.vtk>]
             [--strategy fusion|staged|roundtrip|streamed] [--device cpu|gpu]
             [--output <out.vtk>] [--render <slice.ppm>] [--trace <trace.json>]
             [--faults <spec>] [--max-retries <n>] [--fallback on|off]
             [--verify off|residents|full]
  dfgc run   --ranks <n> --grid NXxNYxNZ [--blocks NXxNYxNZ]
             [--workload q|vorticity|vmag] [--mode real|model]
             [--strategy fusion|staged|roundtrip] [--device cpu|gpu]
             [--faults <spec>] [--deadline-ms <n>] [--max-retries <n>]
             [--fallback on|off] [--verify off|residents|full]
             [--output <out.vtk>] [--trace <trace.json>]
  dfgc plan  --expr <program> --grid NXxNYxNZ
  dfgc profile <program> [--grid NXxNYxNZ | --input <in.vtk>]
             [--device cpu|gpu] [--out-dir <dir>] [--branch-parallel on|off]
             [--opt off|cse|default|fast] [--verify off|residents|full]
             [--stream <overlap-depth>] [--budget-mb <n>]
  dfgc insitu [--cycles <n>] [--grid NXxNYxNZ] [--expr <program>]
             [--strategy fusion|staged|roundtrip|streamed] [--device cpu|gpu]
  dfgc parse --expr <program>
  dfgc serve [--addr HOST:PORT] [--addr-file <path>] [--device cpu|gpu]
             [--queue <n>] [--batch-window-ms <n>] [--coalesce on|off]
             [--quota-mb <n>] [--recovery on|off] [--stream-depth <n>]
             [--deadline-ms <n>] [--idle-ttl-s <n>] [--max-line-kb <n>]
             [--pressure-mb <n>] [--conn-faults <plan>]
  dfgc bench-clients --addr HOST:PORT [--tenants <n>] [--requests <n>]
             [--expr <program>] [--grid NXxNYxNZ] [--data on|off]
  dfgc kernels
  dfgc info";

/// Tiny shim so the generated source path stays a single call.
mod dfg_kernels_shim {
    use dfg_dataflow::NetworkSpec;

    pub fn generated_source_of(spec: &NetworkSpec) -> Result<String, String> {
        dfg_kernels::fuse(spec)
            .map(|p| p.generated_source("dfgc_expr"))
            .map_err(|e| e.to_string())
    }
}

struct Args {
    flags: HashMap<String, String>,
}

impl Args {
    fn parse(args: &[String]) -> Result<Args, String> {
        let mut flags = HashMap::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let Some(key) = a.strip_prefix("--") else {
                return Err(format!("unexpected argument `{a}`"));
            };
            let value = it
                .next()
                .ok_or_else(|| format!("--{key} needs a value"))?
                .clone();
            if flags.insert(key.to_string(), value).is_some() {
                return Err(format!("--{key} given twice"));
            }
        }
        Ok(Args { flags })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    fn expression(&self) -> Result<String, String> {
        match (self.get("expr"), self.get("expr-file")) {
            (Some(e), None) => Ok(format!("{e}\n")),
            (None, Some(path)) => {
                std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))
            }
            (Some(_), Some(_)) => Err("give --expr or --expr-file, not both".into()),
            (None, None) => Err("an expression is required (--expr / --expr-file)".into()),
        }
    }
}

fn device_of(name: Option<&str>) -> Result<DeviceProfile, String> {
    match name.unwrap_or("gpu") {
        "cpu" => Ok(DeviceProfile::intel_x5660()),
        "gpu" => Ok(DeviceProfile::nvidia_m2050()),
        other => Err(format!("unknown device `{other}` (cpu|gpu)")),
    }
}

fn strategy_of(name: Option<&str>) -> Result<Option<Strategy>, String> {
    match name.unwrap_or("fusion") {
        "fusion" => Ok(Some(Strategy::Fusion)),
        "staged" => Ok(Some(Strategy::Staged)),
        "roundtrip" => Ok(Some(Strategy::Roundtrip)),
        "streamed" => Ok(None), // handled via derive_streamed
        other => Err(format!(
            "unknown strategy `{other}` (fusion|staged|roundtrip|streamed)"
        )),
    }
}

/// Entry point: route to a subcommand.
pub fn dispatch(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&Args::parse(&args[1..])?),
        Some("plan") => cmd_plan(&Args::parse(&args[1..])?),
        Some("profile") => cmd_profile(&args[1..]),
        Some("insitu") => cmd_insitu(&Args::parse(&args[1..])?),
        Some("parse") => cmd_parse(&Args::parse(&args[1..])?),
        Some("serve") => cmd_serve(&Args::parse(&args[1..])?),
        Some("bench-clients") => cmd_bench_clients(&Args::parse(&args[1..])?),
        Some("kernels") => {
            cmd_kernels();
            Ok(())
        }
        Some("info") => {
            cmd_info();
            Ok(())
        }
        Some(other) => Err(format!("unknown subcommand `{other}`")),
        None => Err("a subcommand is required".into()),
    }
}

fn load_dataset(args: &Args) -> Result<RectilinearDataset, String> {
    match (args.get("grid"), args.get("input")) {
        (Some(g), None) => {
            let dims = parse_grid(g)?;
            let mesh = RectilinearMesh::unit_cube(dims);
            let workload = RtWorkload::paper_default();
            let (u, v, w) = workload.sample_velocity(&mesh);
            let mut ds = RectilinearDataset::new(mesh);
            ds.set_array("u", DataArray::scalar(u)).expect("length");
            ds.set_array("v", DataArray::scalar(v)).expect("length");
            ds.set_array("w", DataArray::scalar(w)).expect("length");
            Ok(ds)
        }
        (None, Some(path)) => {
            read_vtk(std::path::Path::new(path)).map_err(|e| format!("reading {path}: {e}"))
        }
        (Some(_), Some(_)) => Err("give --grid or --input, not both".into()),
        (None, None) => Err("a data source is required (--grid / --input)".into()),
    }
}

fn fieldset_of(ds: &RectilinearDataset) -> FieldSet {
    let mut fields = FieldSet::new(ds.ncells());
    let (x, y, z) = ds.mesh.coord_arrays();
    fields.insert_scalar("x", x).expect("mesh length");
    fields.insert_scalar("y", y).expect("mesh length");
    fields.insert_scalar("z", z).expect("mesh length");
    fields.insert_small("dims", ds.mesh.dims_buffer());
    for name in ds.array_names() {
        let arr = ds.array(name).expect("listed");
        if arr.ncomp == 1 {
            fields
                .insert_scalar(name, arr.data.clone())
                .expect("validated by dataset");
        }
    }
    fields
}

/// Recovery flags for `run`: `--faults <spec>` installs a deterministic
/// fault plan, `--max-retries <n>` and `--fallback on|off` shape the
/// [`dfg_core::RecoveryPolicy`]. Giving any of the three enables recovery.
fn recovery_of(
    args: &Args,
) -> Result<(dfg_core::RecoveryPolicy, Option<dfg_ocl::FaultPlan>), String> {
    let plan = args
        .get("faults")
        .map(|spec| dfg_ocl::FaultPlan::parse(spec).map_err(|e| format!("--faults: {e}")))
        .transpose()?;
    let max_retries = args
        .get("max-retries")
        .map(|s| {
            s.parse::<u32>()
                .map_err(|_| format!("--max-retries must be an integer, got `{s}`"))
        })
        .transpose()?;
    let fallback = args
        .get("fallback")
        .map(|s| match s {
            "on" | "true" | "1" => Ok(true),
            "off" | "false" | "0" => Ok(false),
            other => Err(format!("--fallback takes on|off, got `{other}`")),
        })
        .transpose()?;
    let engaged = plan.is_some() || max_retries.is_some() || fallback.is_some();
    let policy = if engaged {
        dfg_core::RecoveryPolicy {
            max_retries: max_retries.unwrap_or(3),
            fallback: fallback.unwrap_or(true),
            ..dfg_core::RecoveryPolicy::resilient()
        }
    } else {
        dfg_core::RecoveryPolicy::disabled()
    };
    Ok((policy, plan))
}

/// `--verify off|residents|full` selects the silent-corruption
/// verification level (default off: the paper's unverified behavior).
fn verify_of(args: &Args) -> Result<dfg_ocl::VerifyPolicy, String> {
    match args.get("verify") {
        Some(s) => s
            .parse::<dfg_ocl::VerifyPolicy>()
            .map_err(|_| format!("--verify takes off|residents|full, got `{s}`")),
        None => Ok(dfg_ocl::VerifyPolicy::Off),
    }
}

/// One summary line for the integrity counters of a finished run.
fn print_integrity(policy: dfg_ocl::VerifyPolicy, report: &dfg_core::ExecReport) {
    if !policy.enabled() {
        return;
    }
    let healed = report
        .recovery
        .as_ref()
        .map(|r| r.integrity_healed)
        .unwrap_or(0);
    println!(
        "integrity ({}): {} check(s), {} violation(s), {} buffer(s) healed",
        policy.name(),
        report.integrity.checks,
        report.integrity.violations,
        healed,
    );
}

/// Render a [`dfg_core::RecoveryReport`] as one summary line plus one line
/// per attempt.
fn print_recovery(r: &dfg_core::RecoveryReport) {
    use dfg_core::AttemptOutcome;
    println!(
        "recovery: {} attempt(s), {} retries, {} fallbacks, {:.1} us backoff{}",
        r.attempts.len(),
        r.retries,
        r.fallbacks,
        r.backoff_seconds * 1e6,
        if r.degraded {
            " — completed on a fallback strategy"
        } else {
            ""
        },
    );
    for a in &r.attempts {
        let what = match &a.outcome {
            AttemptOutcome::Succeeded => "succeeded".to_string(),
            AttemptOutcome::Retried { backoff_seconds } => {
                format!("retried after {:.1} us", backoff_seconds * 1e6)
            }
            AttemptOutcome::FellBack => "fell back".to_string(),
            AttemptOutcome::Skipped {
                required_bytes,
                capacity_bytes,
            } => format!(
                "skipped (needs {:.1} MB, device has {:.1} MB)",
                *required_bytes as f64 / 1e6,
                *capacity_bytes as f64 / 1e6
            ),
            AttemptOutcome::Exhausted => "exhausted".to_string(),
        };
        match &a.error {
            Some(e) => println!("  {:<12} {what}: {e}", a.level.name()),
            None => println!("  {:<12} {what}", a.level.name()),
        }
    }
}

/// `dfgc run --ranks N`: the simulated-cluster path. Runs one of the
/// paper's workloads distributed across N ranks with halo exchange, prints
/// the per-rank attempt log, and — the part a single-engine run never
/// shows — the degraded/lost-rank summary: which ranks fell back, died, or
/// hung, and where their blocks went.
fn cmd_run_distributed(args: &Args) -> Result<(), String> {
    use dfg_cluster::{run_distributed, run_distributed_traced, Cluster, DistOptions};

    let ranks = args
        .get("ranks")
        .expect("caller checked")
        .parse::<usize>()
        .ok()
        .filter(|&n| n > 0)
        .ok_or("--ranks must be a positive integer")?;
    if args.get("expr").is_some() || args.get("expr-file").is_some() {
        return Err("distributed runs take --workload, not --expr".into());
    }
    if args.get("input").is_some() {
        return Err("distributed runs sample their own data; use --grid, not --input".into());
    }
    let dims = parse_grid(args.get("grid").ok_or("--grid is required with --ranks")?)?;
    let nblocks = match args.get("blocks") {
        Some(b) => parse_grid(b)?,
        None => [ranks, 1, 1],
    };
    let workload = match args.get("workload").unwrap_or("q") {
        "q" | "q-criterion" => dfg_core::Workload::QCriterion,
        "vorticity" | "vortmag" => dfg_core::Workload::VorticityMagnitude,
        "vmag" | "velocity" => dfg_core::Workload::VelocityMagnitude,
        other => return Err(format!("unknown workload `{other}` (q|vorticity|vmag)")),
    };
    let mode = match args.get("mode").unwrap_or("real") {
        "real" => ExecMode::Real,
        "model" => ExecMode::Model,
        other => return Err(format!("--mode takes real|model, got `{other}`")),
    };
    let strategy = strategy_of(args.get("strategy"))?.ok_or(
        "the streamed strategy is per-device; distributed runs take fusion|staged|roundtrip",
    )?;
    let (recovery, _) = recovery_of(args)?;
    let deadline = args
        .get("deadline-ms")
        .map(|s| {
            s.parse::<u64>()
                .map_err(|_| format!("--deadline-ms must be an integer, got `{s}`"))
        })
        .transpose()?
        .map(std::time::Duration::from_millis);

    let mesh = RectilinearMesh::unit_cube(dims);
    let rt = RtWorkload::paper_default();
    let cluster = Cluster {
        nodes: ranks,
        devices_per_node: 1,
        profile: device_of(args.get("device"))?,
    };
    let opts = DistOptions {
        workload,
        strategy,
        mode,
        recovery,
        fault_spec: args.get("faults").map(str::to_string),
        exchange_deadline: deadline.or(DistOptions::default().exchange_deadline),
        verify: verify_of(args)?,
        ..Default::default()
    };
    let traced = args.get("trace").is_some();
    let result = if traced {
        run_distributed_traced(&mesh, nblocks, &rt, &cluster, &opts)
    } else {
        run_distributed(&mesh, nblocks, &rt, &cluster, &opts)
    }
    .map_err(|e| e.to_string())?;

    println!(
        "distributed `{}` over {}x{}x{} cells: {} blocks on {} ranks ({}), {}",
        workload.table2_name(),
        dims[0],
        dims[1],
        dims[2],
        result.blocks,
        result.ranks,
        cluster.profile.name,
        if mode == ExecMode::Real {
            "real execution"
        } else {
            "model only"
        },
    );
    println!(
        "makespan {:.3} ms modeled, {} kernels, peak {:.1} MB/device",
        result.makespan_seconds * 1e3,
        result.total_kernel_execs,
        result.max_high_water as f64 / 1e6,
    );
    println!();
    println!(
        "{:>5} {:<10} {:>7} {:>10} {:>8} {:>8} {:>10} {:>12}",
        "rank", "outcome", "blocks", "completed", "adopted", "retries", "fallbacks", "device ms"
    );
    for a in &result.rank_log {
        println!(
            "{:>5} {:<10} {:>7} {:>10} {:>8} {:>8} {:>10} {:>12.3}",
            a.rank,
            a.outcome.label(),
            a.blocks_assigned,
            a.blocks_completed,
            a.adopted_blocks,
            a.recovery.retries,
            a.recovery.fallbacks,
            result.rank_device_seconds[a.rank] * 1e3,
        );
    }
    println!();
    if result.degraded {
        println!("degraded run:");
        if !result.lost_ranks.is_empty() {
            let moved: Vec<String> = result
                .redistributed_blocks
                .iter()
                .map(|(b, a)| format!("{b}->{a}"))
                .collect();
            println!(
                "  lost ranks {:?}; {} block(s) redistributed: {}",
                result.lost_ranks,
                result.redistributed_blocks.len(),
                moved.join(", "),
            );
        }
        if !result.degraded_ranks.is_empty() {
            println!(
                "  ranks {:?} completed on a fallback strategy",
                result.degraded_ranks
            );
        }
        if result.ghost_filled_faces > 0 {
            println!(
                "  {} ghost face(s) filled analytically ({} exchange timeouts, {} dropped sends)",
                result.ghost_filled_faces, result.exchange_timeouts, result.exchange_drops,
            );
        }
        if result.garbled_faces > 0 {
            println!(
                "  {} halo face(s) failed checksum verification and were re-sampled",
                result.garbled_faces,
            );
        }
    } else {
        println!("all ranks completed on the requested strategy");
    }

    if let Some(path) = args.get("trace") {
        let trace = result.trace.as_ref().expect("traced run");
        std::fs::write(path, trace.to_chrome_trace())
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("trace written to {path}");
    }
    if let Some(path) = args.get("output") {
        let Some(field) = &result.field else {
            return Err("--output needs --mode real (model runs produce no data)".into());
        };
        let mut ds = RectilinearDataset::new(mesh);
        ds.set_array(workload.table2_name(), DataArray::scalar(field.clone()))
            .map_err(|e| e.to_string())?;
        write_vtk(&ds, "dfgc distributed output", std::path::Path::new(path))
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("dataset written to {path}");
    }
    Ok(())
}

fn cmd_run(args: &Args) -> Result<(), String> {
    if args.get("ranks").is_some() {
        return cmd_run_distributed(args);
    }
    let expression = args.expression()?;
    let mut ds = load_dataset(args)?;
    let fields = fieldset_of(&ds);
    let profile = device_of(args.get("device"))?;
    let strategy = strategy_of(args.get("strategy"))?;
    let (recovery, fault_plan) = recovery_of(args)?;
    let verify = verify_of(args)?;

    let mut engine = Engine::with_options(
        profile,
        EngineOptions {
            recovery,
            verify,
            ..EngineOptions::default()
        },
    );
    if let Some(plan) = fault_plan {
        engine.set_fault_plan(plan);
    }
    let report = match strategy {
        Some(s) => engine.derive(&expression, &fields, s),
        None => engine.derive_streamed(&expression, &fields, None),
    }
    .map_err(|e| {
        if let Some(r) = e.recovery() {
            print_recovery(r);
        }
        pretty_engine_err(&e, &expression)
    })?;

    let field = report.field.as_ref().expect("real-mode run");
    let name = compile(&expression)
        .ok()
        .and_then(|spec| spec.node(spec.result).name.clone())
        .unwrap_or_else(|| "derived".to_string());
    let (w, r, k) = report.table2_row();
    println!(
        "derived `{name}` over {} cells: {w} writes, {r} reads, {k} kernels, \
         {:.3} ms modeled, {:.3} ms wall, peak {:.1} MB",
        field.ncells,
        report.device_seconds() * 1e3,
        report.wall.as_secs_f64() * 1e3,
        report.high_water_bytes() as f64 / 1e6,
    );
    if let Some(r) = &report.recovery {
        print_recovery(r);
    }
    print_integrity(verify, &report);

    if let Some(path) = args.get("trace") {
        std::fs::write(path, report.profile.to_chrome_trace())
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("trace written to {path}");
    }
    if let Some(path) = args.get("render") {
        if field.width != Width::Scalar {
            return Err("--render needs a scalar result".into());
        }
        let dims = ds.mesh.dims();
        let img = render_slice(&field.data, dims, 2, dims[2] / 2);
        img.write_ppm(std::path::Path::new(path))
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("rendering written to {path} ({}x{})", img.width, img.height);
    }
    if let Some(path) = args.get("output") {
        let array = match field.width {
            Width::Vec4 => {
                let mut data = Vec::with_capacity(3 * field.ncells);
                for i in 0..field.ncells {
                    data.extend_from_slice(&field.data[4 * i..4 * i + 3]);
                }
                DataArray::vector3(data)
            }
            _ => DataArray::scalar(field.data.clone()),
        };
        ds.set_array(&name, array).map_err(|e| e.to_string())?;
        write_vtk(&ds, "dfgc output", std::path::Path::new(path))
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("dataset written to {path}");
    }
    Ok(())
}

/// `dfgc profile <expression>`: run the expression under every single-pass
/// strategy with a tracer attached, write one Chrome-trace JSON per
/// strategy, and print a comparison table plus flame summaries.
fn cmd_profile(raw: &[String]) -> Result<(), String> {
    // The expression may be given positionally (`dfgc profile "mag = …"`)
    // or through the usual --expr / --expr-file flags.
    let (positional, rest) = match raw.first() {
        Some(a) if !a.starts_with("--") => (Some(a.clone()), &raw[1..]),
        _ => (None, raw),
    };
    let args = Args::parse(rest)?;
    let expression = match positional {
        Some(e) => {
            if args.get("expr").is_some() || args.get("expr-file").is_some() {
                return Err("give the expression positionally or via --expr, not both".into());
            }
            format!("{e}\n")
        }
        None => args.expression()?,
    };

    let ds = if args.get("grid").is_some() || args.get("input").is_some() {
        load_dataset(&args)?
    } else {
        // Default workload: the paper's RT velocity sample on a small grid,
        // large enough that per-stage times are visible, small enough to be
        // instant.
        let mesh = RectilinearMesh::unit_cube([32, 32, 32]);
        let workload = RtWorkload::paper_default();
        let (u, v, w) = workload.sample_velocity(&mesh);
        let mut ds = RectilinearDataset::new(mesh);
        ds.set_array("u", DataArray::scalar(u)).expect("length");
        ds.set_array("v", DataArray::scalar(v)).expect("length");
        ds.set_array("w", DataArray::scalar(w)).expect("length");
        ds
    };
    let fields = fieldset_of(&ds);
    let profile = device_of(args.get("device"))?;
    let branch_parallel = match args.get("branch-parallel").unwrap_or("off") {
        "on" | "true" | "1" => true,
        "off" | "false" | "0" => false,
        other => return Err(format!("--branch-parallel takes on|off, got `{other}`")),
    };
    let opt_level = match args.get("opt") {
        Some(s) => dfg_dataflow::OptLevel::parse(s)
            .ok_or_else(|| format!("--opt takes off|cse|default|fast, got `{s}`"))?,
        None => dfg_dataflow::OptLevel::Off,
    };
    let verify = verify_of(&args)?;
    let out_dir = std::path::PathBuf::from(args.get("out-dir").unwrap_or("."));
    std::fs::create_dir_all(&out_dir)
        .map_err(|e| format!("creating {}: {e}", out_dir.display()))?;

    println!(
        "profiling `{}` over {} cells on {}",
        expression.trim(),
        fields.ncells(),
        profile.name
    );
    println!();

    struct Row {
        name: &'static str,
        table2: (usize, usize, usize),
        device_s: f64,
        wall_ms: f64,
        peak_mb: f64,
        flame: String,
        path: std::path::PathBuf,
        levels: Vec<(u64, u64)>,
        checks: u64,
        violations: u64,
        unverified_wall_ms: Option<f64>,
    }
    let mut rows = Vec::new();
    let mut opt_stats = None;
    for strategy in [Strategy::Roundtrip, Strategy::Staged, Strategy::Fusion] {
        let mut engine = Engine::with_options(
            profile.clone(),
            EngineOptions {
                branch_parallel,
                optimize: opt_level,
                verify,
                ..EngineOptions::default()
            },
        );
        engine.set_tracer(Tracer::new());
        let report = engine
            .derive(&expression, &fields, strategy)
            .map_err(|e| pretty_engine_err(&e, &expression))?;
        opt_stats = engine.opt_stats(&expression);
        // With verification on, run the same strategy unverified too, so
        // the table can state the wall-clock cost of the checksum pass.
        let unverified_wall_ms = if verify.enabled() {
            let mut base = Engine::with_options(
                profile.clone(),
                EngineOptions {
                    branch_parallel,
                    optimize: opt_level,
                    ..EngineOptions::default()
                },
            );
            let r = base
                .derive(&expression, &fields, strategy)
                .map_err(|e| pretty_engine_err(&e, &expression))?;
            Some(r.wall.as_secs_f64() * 1e3)
        } else {
            None
        };
        let trace = report.trace.as_ref().expect("tracer attached");
        let path = out_dir.join(format!("trace-{}.json", strategy.name()));
        std::fs::write(&path, trace.to_chrome_trace())
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        // Per-level fan-out recorded by the branch-parallel executor.
        let levels: Vec<(u64, u64)> = trace
            .spans()
            .iter()
            .filter(|s| s.name == "exec.level")
            .map(|s| {
                (
                    s.meta_u64("level").unwrap_or(0),
                    s.meta_u64("fanout").unwrap_or(0),
                )
            })
            .collect();
        rows.push(Row {
            name: strategy.name(),
            table2: report.table2_row(),
            device_s: report.device_seconds(),
            wall_ms: report.wall.as_secs_f64() * 1e3,
            peak_mb: report.high_water_bytes() as f64 / 1e6,
            flame: trace.to_flame_text(),
            path,
            levels,
            checks: report.integrity.checks,
            violations: report.integrity.violations,
            unverified_wall_ms,
        });
    }

    println!(
        "{:<10} {:>6} {:>6} {:>6} {:>12} {:>10} {:>9}",
        "strategy", "Dev-W", "Dev-R", "K-Exe", "device s", "wall ms", "peak MB"
    );
    for row in &rows {
        let (w, r, k) = row.table2;
        println!(
            "{:<10} {w:>6} {r:>6} {k:>6} {:>12.6} {:>10.3} {:>9.1}",
            row.name, row.device_s, row.wall_ms, row.peak_mb
        );
    }
    if verify.enabled() {
        println!();
        println!("integrity verification ({}):", verify.name());
        for row in &rows {
            let base = row.unverified_wall_ms.unwrap_or(row.wall_ms);
            let overhead = if base > 0.0 {
                (row.wall_ms / base - 1.0) * 100.0
            } else {
                0.0
            };
            println!(
                "  {:<10} {} check(s), {} violation(s), wall {:.3} ms vs {:.3} ms \
                 unverified ({overhead:+.1}%)",
                row.name, row.checks, row.violations, row.wall_ms, base,
            );
        }
    }
    if let Some(opt) = opt_stats {
        println!();
        println!(
            "optimizer ({}): {} -> {} filters ({} eliminated: {} merged, {} folded, \
             {} rewritten) in {} pass{}, {} intermediate bytes/cell saved",
            opt.level.name(),
            opt.filters_before,
            opt.filters_after,
            opt.filters_eliminated(),
            opt.merged,
            opt.folded,
            opt.rewritten,
            opt.passes,
            if opt.passes == 1 { "" } else { "es" },
            opt.bytes_saved_per_cell,
        );
    }
    for row in &rows {
        println!();
        println!(
            "--- {} (chrome trace: {}) ---",
            row.name,
            row.path.display()
        );
        print!("{}", row.flame);
        if !row.levels.is_empty() {
            let fanned: Vec<String> = row
                .levels
                .iter()
                .map(|(level, fanout)| format!("L{level}\u{00d7}{fanout}"))
                .collect();
            println!(
                "  branch-parallel levels (fan-out \u{2265} 2): {}",
                fanned.join(" ")
            );
        }
    }
    // Optional fourth column: the overlapped streamed pipeline at the
    // requested depth, with its queue-level occupancy breakdown.
    if let Some(depth_s) = args.get("stream") {
        let depth = depth_s
            .parse::<usize>()
            .ok()
            .filter(|&d| d > 0)
            .ok_or_else(|| format!("--stream takes a positive overlap depth, got `{depth_s}`"))?;
        let budget =
            match args.get("budget-mb") {
                Some(s) => Some(
                    s.parse::<u64>().ok().filter(|&n| n > 0).ok_or_else(|| {
                        format!("--budget-mb must be a positive integer, got `{s}`")
                    })? << 20,
                ),
                None => None,
            };
        let mut engine = Engine::with_options(
            profile.clone(),
            EngineOptions {
                branch_parallel,
                optimize: opt_level,
                verify,
                stream: dfg_core::StreamOptions {
                    overlap_depth: depth,
                    ..Default::default()
                },
                ..EngineOptions::default()
            },
        );
        engine.set_tracer(Tracer::new());
        let report = engine
            .derive_streamed(&expression, &fields, budget)
            .map_err(|e| pretty_engine_err(&e, &expression))?;
        let trace = report.trace.as_ref().expect("tracer attached");
        let path = out_dir.join("trace-streamed.json");
        std::fs::write(&path, trace.to_chrome_trace())
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        let p = &report.profile;
        let slabs = p.count(dfg_ocl::EventKind::KernelExec);
        let eff_depth = trace
            .spans()
            .iter()
            .find(|s| s.name == "stream.pipeline")
            .and_then(|s| s.meta_u64("depth"))
            .unwrap_or(depth as u64);
        println!();
        println!(
            "--- streamed pipeline (chrome trace: {}) ---",
            path.display()
        );
        println!(
            "  {slabs} slab{} at overlap depth {eff_depth}{}, peak {:.1} MB",
            if slabs == 1 { "" } else { "s" },
            if eff_depth == depth as u64 {
                String::new()
            } else {
                format!(" (requested {depth}, shrunk to fit)")
            },
            report.high_water_bytes() as f64 / 1e6,
        );
        println!(
            "  makespan {:.6}s vs {:.6}s serialized ({:.6}s of transfer hidden, \
             overlap efficiency {:.0}%)",
            p.makespan_seconds(),
            p.device_seconds(),
            p.overlap_hidden_seconds(),
            p.overlap_efficiency() * 100.0,
        );
        for q in p.queues_used() {
            println!(
                "  queue {q}: busy {:.6}s, occupancy {:.0}%",
                p.queue_busy_seconds(q),
                p.queue_occupancy(q) * 100.0,
            );
        }
    }
    let pool = dfg_exec::global();
    let (executed, steals) = pool.stats();
    println!();
    println!(
        "dfg-exec pool: {} thread{} ({}), {executed} jobs run by workers, {steals} stolen",
        pool.num_threads(),
        if pool.num_threads() == 1 { "" } else { "s" },
        if std::env::var("DFG_NUM_THREADS").map(|v| !v.trim().is_empty()) == Ok(true) {
            "DFG_NUM_THREADS"
        } else {
            "available parallelism"
        },
    );
    Ok(())
}

/// `dfgc insitu`: drive the miniature flow solver for N cycles under a
/// persistent [`dfg_core::Session`], deriving the expression every cycle —
/// the in-situ hot loop with uploads, codegen, and buffer allocations
/// amortized across cycles.
fn cmd_insitu(args: &Args) -> Result<(), String> {
    let cycles = match args.get("cycles") {
        Some(s) => s
            .parse::<usize>()
            .ok()
            .filter(|&n| n > 0)
            .ok_or_else(|| format!("--cycles must be a positive integer, got `{s}`"))?,
        None => 16,
    };
    let dims = match args.get("grid") {
        Some(g) => parse_grid(g)?,
        None => [32, 32, 32],
    };
    let expression = match (args.get("expr"), args.get("expr-file")) {
        (None, None) => format!("{}\n", dfg_core::workloads::Q_CRITERION),
        _ => args.expression()?,
    };
    let profile = device_of(args.get("device"))?;
    let strategy = strategy_of(args.get("strategy"))?;

    let mut sim = FlowSimulation::from_workload(dims, &RtWorkload::paper_default());
    let mut engine = Engine::with_options(profile.clone(), EngineOptions::default());
    let mut session = engine.session();

    println!(
        "in-situ session: {} cycles of `{}` over {}x{}x{} cells on {}",
        cycles,
        expression.trim(),
        dims[0],
        dims[1],
        dims[2],
        profile.name
    );
    println!();
    println!(
        "{:>5} {:>6} {:>6} {:>6} {:>12} {:>10}",
        "cycle", "Dev-W", "Dev-R", "K-Exe", "device ms", "wall ms"
    );
    for cycle in 0..cycles {
        sim.step(0.01);
        let report = match strategy {
            Some(s) => session.derive(&expression, sim.fields(), s),
            None => session.derive_streamed(&expression, sim.fields(), None),
        }
        .map_err(|e| pretty_engine_err(&e, &expression))?;
        let (w, r, k) = report.table2_row();
        println!(
            "{cycle:>5} {w:>6} {r:>6} {k:>6} {:>12.3} {:>10.3}",
            report.device_seconds() * 1e3,
            report.wall.as_secs_f64() * 1e3,
        );
    }
    let pool_hits = session.pool_hits();
    let resident_mb = session.resident_bytes() as f64 / 1e6;
    let stats = session.end();
    println!();
    println!(
        "amortized across {} cycles: {} codegen+compile ({} served from cache), \
         {} uploads ({} skipped), {} pooled allocations, {:.1} MB resident",
        stats.cycles,
        stats.codegen_compiles,
        stats.codegen_cached,
        stats.uploads,
        stats.uploads_skipped,
        pool_hits,
        resident_mb,
    );
    Ok(())
}

fn cmd_plan(args: &Args) -> Result<(), String> {
    let expression = args.expression()?;
    let dims = parse_grid(args.get("grid").ok_or("--grid is required for `plan`")?)?;
    let spec = compile(&expression).map_err(|e| e.to_string())?;
    let ncells = (dims[0] * dims[1] * dims[2]) as u64;
    let devices = [DeviceProfile::intel_x5660(), DeviceProfile::nvidia_m2050()];
    let plan = plan(&spec, ncells, &devices).map_err(|e| e.to_string())?;
    println!(
        "{:<10} {:<34} {:>10} {:>10}",
        "strategy", "device", "seconds", "peak GB"
    );
    for opt in &plan.feasible {
        println!(
            "{:<10} {:<34} {:>10.4} {:>10.3}",
            if opt.streamed {
                "streamed".to_string()
            } else {
                opt.strategy.name().to_string()
            },
            opt.device_name,
            opt.seconds,
            opt.peak_bytes as f64 / 1e9
        );
    }
    for (dev, strategy, bytes) in &plan.rejected {
        println!(
            "rejected: {strategy} on {} needs {:.2} GB",
            devices[*dev].name,
            *bytes as f64 / 1e9
        );
    }
    match plan.best() {
        Some(best) => println!(
            "\nbest: {}{} on {}",
            best.strategy.name(),
            if best.streamed { " (streamed)" } else { "" },
            best.device_name
        ),
        None => println!("\nno feasible option on any device"),
    }
    Ok(())
}

fn cmd_parse(args: &Args) -> Result<(), String> {
    let expression = args.expression()?;
    let spec = compile(&expression).map_err(|e| match e {
        dfg_expr::FrontendError::Parse(p) => format!("\n{}", p.render(&expression)),
        other => other.to_string(),
    })?;
    println!("network: {} nodes", spec.len());
    println!();
    println!("{}", spec.to_script());
    match generated_source_of(&spec) {
        Ok(src) => {
            println!("generated fused kernel:");
            println!();
            println!("{src}");
        }
        Err(e) => println!("(not fusible: {e})"),
    }
    Ok(())
}

/// Print the shared building-block library (§III-B.3): every primitive's
/// OpenCL source, written once and reused by all execution strategies.
fn cmd_kernels() {
    use dfg_kernels::{BinKind, Primitive, UnKind};
    let prims: Vec<Primitive> = vec![
        Primitive::Bin(BinKind::Add),
        Primitive::Bin(BinKind::Sub),
        Primitive::Bin(BinKind::Mul),
        Primitive::Bin(BinKind::Div),
        Primitive::Bin(BinKind::Min),
        Primitive::Bin(BinKind::Max),
        Primitive::Bin(BinKind::Pow),
        Primitive::Bin(BinKind::Atan2),
        Primitive::Bin(BinKind::And),
        Primitive::Bin(BinKind::Or),
        Primitive::Un(UnKind::Neg),
        Primitive::Un(UnKind::Sqrt),
        Primitive::Un(UnKind::Abs),
        Primitive::Un(UnKind::Sin),
        Primitive::Un(UnKind::Cos),
        Primitive::Un(UnKind::Tan),
        Primitive::Un(UnKind::Exp),
        Primitive::Un(UnKind::Log),
        Primitive::Un(UnKind::Not),
        Primitive::Select,
        Primitive::Compose3,
        Primitive::Decompose(0),
        Primitive::Norm3,
        Primitive::Dot3,
        Primitive::Cross3,
        Primitive::Grad3d,
    ];
    println!(
        "the shared derived-field building-block library ({} primitives):",
        prims.len()
    );
    println!();
    for p in prims {
        println!("{}", p.opencl_source());
        println!();
    }
}

fn cmd_info() {
    println!("devices:");
    for profile in [DeviceProfile::intel_x5660(), DeviceProfile::nvidia_m2050()] {
        println!(
            "  {:<34} {:>7.2} GB, {:>6.1} GB/s mem, {:>6.0} GFLOP/s",
            profile.name,
            profile.global_mem_bytes as f64 / 1e9,
            profile.mem_bytes_per_sec / 1e9,
            profile.flops_per_sec / 1e9
        );
    }
    println!();
    println!("Table I evaluation grids:");
    for grid in TABLE1_CATALOG {
        println!(
            "  {grid}   {:>12} cells  {}",
            grid.ncells(),
            grid.data_size_display()
        );
    }
    let _ = ExecMode::Real; // re-exported surface sanity
}

fn on_off(args: &Args, key: &str, default: bool) -> Result<bool, String> {
    match args.get(key) {
        None => Ok(default),
        Some("on" | "true" | "1") => Ok(true),
        Some("off" | "false" | "0") => Ok(false),
        Some(other) => Err(format!("--{key} takes on|off, got `{other}`")),
    }
}

fn uint_of(args: &Args, key: &str, default: u64) -> Result<u64, String> {
    match args.get(key) {
        None => Ok(default),
        Some(s) => s
            .parse::<u64>()
            .map_err(|_| format!("--{key} must be an integer, got `{s}`")),
    }
}

/// `dfgc serve`: run the multi-tenant derived-field service until a
/// client sends `shutdown` (see docs/SERVING.md).
fn cmd_serve(args: &Args) -> Result<(), String> {
    let addr = args.get("addr").unwrap_or("127.0.0.1:0");
    let profile = device_of(args.get("device"))?;
    let recovery = if on_off(args, "recovery", true)? {
        dfg_core::RecoveryPolicy::resilient()
    } else {
        dfg_core::RecoveryPolicy::disabled()
    };
    let stream = dfg_core::StreamOptions {
        overlap_depth: uint_of(args, "stream-depth", 2)? as usize,
        ..Default::default()
    };
    if stream.overlap_depth == 0 {
        return Err("--stream-depth must be at least 1".into());
    }
    let config = dfg_serve::ServeConfig {
        profile,
        options: EngineOptions {
            recovery,
            stream,
            ..EngineOptions::default()
        },
        queue_capacity: uint_of(args, "queue", 64)? as usize,
        batch_window: std::time::Duration::from_millis(uint_of(args, "batch-window-ms", 2)?),
        coalesce: on_off(args, "coalesce", true)?,
        default_quota: args
            .get("quota-mb")
            .map(|s| {
                s.parse::<u64>()
                    .map(|mb| mb * 1024 * 1024)
                    .map_err(|_| format!("--quota-mb must be an integer, got `{s}`"))
            })
            .transpose()?,
        default_deadline: args
            .get("deadline-ms")
            .map(|s| {
                s.parse::<u64>()
                    .map(std::time::Duration::from_millis)
                    .map_err(|_| format!("--deadline-ms must be an integer, got `{s}`"))
            })
            .transpose()?,
        idle_ttl: args
            .get("idle-ttl-s")
            .map(|s| {
                s.parse::<u64>()
                    .map(std::time::Duration::from_secs)
                    .map_err(|_| format!("--idle-ttl-s must be an integer, got `{s}`"))
            })
            .transpose()?,
        max_line_bytes: match args.get("max-line-kb") {
            Some(s) => s
                .parse::<usize>()
                .map(|kb| kb * 1024)
                .map_err(|_| format!("--max-line-kb must be an integer, got `{s}`"))?,
            None => dfg_serve::ServeConfig::default().max_line_bytes,
        },
        memory_pressure_bytes: args
            .get("pressure-mb")
            .map(|s| {
                s.parse::<u64>()
                    .map(|mb| mb * 1024 * 1024)
                    .map_err(|_| format!("--pressure-mb must be an integer, got `{s}`"))
            })
            .transpose()?,
        conn_faults: args
            .get("conn-faults")
            .map(|s| dfg_ocl::FaultPlan::parse(s).map_err(|e| format!("--conn-faults: {e}")))
            .transpose()?,
        ..dfg_serve::ServeConfig::default()
    };
    let server = dfg_serve::Server::start(addr, config).map_err(|e| format!("bind {addr}: {e}"))?;
    let local = server.local_addr();
    if let Some(path) = args.get("addr-file") {
        std::fs::write(path, local.to_string()).map_err(|e| format!("writing {path}: {e}"))?;
    }
    println!("dfg-serve listening on {local} (send {{\"op\":\"shutdown\"}} to stop)");
    let counters = server
        .join()
        .map_err(|_| "server thread panicked".to_string())?;
    println!(
        "served {} requests: {} ok ({} coalesced, {} degraded), \
         {} overloaded, {} over quota, {} errors, {} malformed, \
         {} too large, {} past deadline, {} cancelled, \
         {} sessions evicted ({} idle, {} pressure)",
        counters.requests,
        counters.ok,
        counters.coalesced,
        counters.degraded,
        counters.rejected_overload,
        counters.rejected_quota,
        counters.errors,
        counters.malformed,
        counters.rejected_too_large,
        counters.rejected_deadline,
        counters.cancelled,
        counters.evicted_idle + counters.evicted_pressure,
        counters.evicted_idle,
        counters.evicted_pressure,
    );
    Ok(())
}

/// `dfgc bench-clients`: drive a running server with N tenant threads ×
/// M requests each and report throughput and latency percentiles.
fn cmd_bench_clients(args: &Args) -> Result<(), String> {
    let addr = args
        .get("addr")
        .ok_or("--addr is required (the server's address)")?
        .to_string();
    let tenants = uint_of(args, "tenants", 4)? as usize;
    let requests = uint_of(args, "requests", 20)? as usize;
    let expr = args
        .get("expr")
        .unwrap_or("vmag = sqrt(u*u + v*v + w*w)")
        .to_string();
    let grid = match args.get("grid") {
        Some(g) => parse_grid(g)?,
        None => [16, 16, 16],
    };
    let data = on_off(args, "data", false)?;

    let started = std::time::Instant::now();
    let mut handles = Vec::new();
    for t in 0..tenants {
        let addr = addr.clone();
        let expr = expr.clone();
        handles.push(std::thread::spawn(move || -> Result<Vec<f64>, String> {
            let mut client =
                dfg_serve::Client::connect(&addr).map_err(|e| format!("connect {addr}: {e}"))?;
            let tenant = format!("bench-{t}");
            let mut latencies = Vec::with_capacity(requests);
            for _ in 0..requests {
                let t0 = std::time::Instant::now();
                client
                    .derive(&tenant, &expr, grid, dfg_serve::ExecStrategy::Fusion, data)
                    .map_err(|e| format!("{tenant}: {e}"))?;
                latencies.push(t0.elapsed().as_secs_f64() * 1e3);
            }
            Ok(latencies)
        }));
    }
    let mut latencies: Vec<f64> = Vec::new();
    for h in handles {
        latencies.extend(
            h.join()
                .map_err(|_| "client thread panicked".to_string())??,
        );
    }
    let elapsed = started.elapsed().as_secs_f64();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let pct = |p: f64| latencies[((latencies.len() - 1) as f64 * p) as usize];
    println!(
        "{} tenants x {} requests: {:.0} req/s, p50 {:.3} ms, p99 {:.3} ms",
        tenants,
        requests,
        latencies.len() as f64 / elapsed,
        pct(0.50),
        pct(0.99),
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn grid_parsing() {
        assert_eq!(crate::parse_grid("4x5x6").unwrap(), [4, 5, 6]);
        assert_eq!(crate::parse_grid("192X192X256").unwrap(), [192, 192, 256]);
        assert!(crate::parse_grid("4x5").is_err());
        assert!(crate::parse_grid("0x5x6").is_err());
        assert!(crate::parse_grid("axbxc").is_err());
    }

    #[test]
    fn args_require_values_and_no_duplicates() {
        assert!(Args::parse(&strs(&["--expr"])).is_err());
        assert!(Args::parse(&strs(&["--expr", "a", "--expr", "b"])).is_err());
        assert!(Args::parse(&strs(&["positional"])).is_err());
        let a = Args::parse(&strs(&["--expr", "r = u"])).unwrap();
        assert_eq!(a.get("expr"), Some("r = u"));
    }

    #[test]
    fn dispatch_rejects_unknown_subcommands() {
        assert!(dispatch(&strs(&["frobnicate"])).is_err());
        assert!(dispatch(&[]).is_err());
    }

    #[test]
    fn run_on_synthetic_grid() {
        let dir = std::env::temp_dir().join("dfgc_test");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("out.vtk");
        let trace = dir.join("trace.json");
        dispatch(&strs(&[
            "run",
            "--expr",
            "v_mag = sqrt(u*u + v*v + w*w)",
            "--grid",
            "8x8x8",
            "--output",
            out.to_str().unwrap(),
            "--trace",
            trace.to_str().unwrap(),
        ]))
        .unwrap();
        let ds = read_vtk(&out).unwrap();
        assert!(ds.has_array("v_mag"));
        assert!(std::fs::read_to_string(&trace).unwrap().starts_with('['));
    }

    #[test]
    fn run_round_trips_through_vtk_input() {
        // Write a dataset, read it back as --input, derive from it.
        let dir = std::env::temp_dir().join("dfgc_test_roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("in.vtk");
        let output = dir.join("out.vtk");
        dispatch(&strs(&[
            "run",
            "--expr",
            "v_mag = sqrt(u*u + v*v + w*w)",
            "--grid",
            "6x6x6",
            "--output",
            input.to_str().unwrap(),
        ]))
        .unwrap();
        dispatch(&strs(&[
            "run",
            "--expr",
            "twice = v_mag * 2",
            "--input",
            input.to_str().unwrap(),
            "--strategy",
            "staged",
            "--device",
            "cpu",
            "--output",
            output.to_str().unwrap(),
        ]))
        .unwrap();
        let ds = read_vtk(&output).unwrap();
        let vm = ds.array("v_mag").unwrap();
        let twice = ds.array("twice").unwrap();
        for i in 0..ds.ncells() {
            assert!((twice.data[i] - 2.0 * vm.data[i]).abs() < 1e-5);
        }
    }

    #[test]
    fn profile_writes_a_chrome_trace_per_strategy() {
        let dir = std::env::temp_dir().join("dfgc_test_profile");
        std::fs::create_dir_all(&dir).unwrap();
        dispatch(&strs(&[
            "profile",
            "mag = sqrt(u*u + v*v + w*w)",
            "--grid",
            "8x8x8",
            "--out-dir",
            dir.to_str().unwrap(),
        ]))
        .unwrap();
        for (strategy, stages) in [
            (
                "roundtrip",
                ["roundtrip.upload", "roundtrip.kernel", "roundtrip.download"],
            ),
            (
                "staged",
                ["staged.upload", "staged.kernel", "staged.download"],
            ),
            (
                "fusion",
                ["fusion.upload", "fusion.kernel", "fusion.download"],
            ),
        ] {
            let path = dir.join(format!("trace-{strategy}.json"));
            let text = std::fs::read_to_string(&path).unwrap();
            let doc = dfg_trace::json::parse(&text).expect("valid Chrome-trace JSON");
            let names: Vec<&str> = doc
                .get("traceEvents")
                .and_then(dfg_trace::json::Value::as_array)
                .expect("traceEvents array")
                .iter()
                .filter(|e| e.get("ph").and_then(dfg_trace::json::Value::as_str) == Some("X"))
                .filter_map(|e| e.get("name").and_then(dfg_trace::json::Value::as_str))
                .collect();
            for required in ["parse", "plan", "ocl.kernel"].into_iter().chain(stages) {
                assert!(
                    names.contains(&required),
                    "{strategy}: missing `{required}` span"
                );
            }
        }
    }

    #[test]
    fn profile_rejects_conflicting_expressions() {
        assert!(dispatch(&strs(&["profile", "a = u", "--expr", "b = v"])).is_err());
        assert!(dispatch(&strs(&["profile"])).is_err());
    }

    #[test]
    fn plan_and_parse_subcommands() {
        dispatch(&strs(&[
            "plan",
            "--expr",
            dfg_core::workloads::Q_CRITERION,
            "--grid",
            "192x192x1024",
        ]))
        .unwrap();
        dispatch(&strs(&["parse", "--expr", "r = sin(u) + cos(v)"])).unwrap();
        cmd_info();
    }

    #[test]
    fn streamed_strategy_via_cli() {
        dispatch(&strs(&[
            "run",
            "--expr",
            "q = norm(curl(u, v, w, dims, x, y, z))",
            "--grid",
            "12x12x12",
            "--strategy",
            "streamed",
            "--device",
            "cpu",
        ]))
        .unwrap();
    }

    #[test]
    fn kernels_subcommand_prints_library() {
        dispatch(&strs(&["kernels"])).unwrap();
    }

    #[test]
    fn insitu_session_loop_via_cli() {
        dispatch(&strs(&[
            "insitu", "--cycles", "3", "--grid", "8x8x8", "--device", "cpu",
        ]))
        .unwrap();
        // Streamed variant exercises the session kernel cache too.
        dispatch(&strs(&[
            "insitu",
            "--cycles",
            "2",
            "--grid",
            "8x8x8",
            "--strategy",
            "streamed",
            "--device",
            "cpu",
        ]))
        .unwrap();
        assert!(dispatch(&strs(&["insitu", "--cycles", "0"])).is_err());
        assert!(dispatch(&strs(&["insitu", "--cycles", "many"])).is_err());
    }

    #[test]
    fn run_with_injected_faults_recovers() {
        // The first allocation dies; the fallback chain completes the run.
        dispatch(&strs(&[
            "run",
            "--expr",
            "v_mag = sqrt(u*u + v*v + w*w)",
            "--grid",
            "8x8x8",
            "--device",
            "cpu",
            "--faults",
            "alloc@1",
            "--max-retries",
            "2",
        ]))
        .unwrap();
        // Every allocation dies: recovery exhausts the whole chain.
        let err = dispatch(&strs(&[
            "run",
            "--expr",
            "r = u + v",
            "--grid",
            "6x6x6",
            "--faults",
            "alloc:1.0",
        ]))
        .unwrap_err();
        assert!(err.contains("exhausted"), "got: {err}");
    }

    #[test]
    fn recovery_flags_are_validated() {
        let base = ["run", "--expr", "r = u", "--grid", "4x4x4"];
        for bad in [
            ["--faults", "warp@drive"],
            ["--max-retries", "lots"],
            ["--fallback", "sideways"],
        ] {
            let mut argv: Vec<&str> = base.to_vec();
            argv.extend(bad);
            assert!(dispatch(&strs(&argv)).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn verified_run_heals_injected_corruption_bit_exact() {
        // A mem_flip on the first launch under --verify full is detected,
        // healed by recovery, and the written dataset is bit-identical to
        // an unverified fault-free run.
        let dir = std::env::temp_dir().join("dfgc_test_verify");
        std::fs::create_dir_all(&dir).unwrap();
        let clean = dir.join("clean.vtk");
        let healed = dir.join("healed.vtk");
        let base = ["run", "--expr", "q = u*v + w", "--grid", "8x8x8"];
        let mut argv: Vec<&str> = base.to_vec();
        argv.extend(["--output", clean.to_str().unwrap()]);
        dispatch(&strs(&argv)).unwrap();
        let mut argv: Vec<&str> = base.to_vec();
        argv.extend([
            "--verify",
            "full",
            "--faults",
            "mem_flip@1",
            "--max-retries",
            "3",
            "--output",
            healed.to_str().unwrap(),
        ]);
        dispatch(&strs(&argv)).unwrap();
        let a = read_vtk(&clean).unwrap();
        let b = read_vtk(&healed).unwrap();
        let (a, b) = (a.array("q").unwrap(), b.array("q").unwrap());
        assert_eq!(a.data.len(), b.data.len());
        for i in 0..a.data.len() {
            assert_eq!(a.data[i].to_bits(), b.data[i].to_bits(), "cell {i}");
        }
    }

    #[test]
    fn verify_flag_is_validated() {
        for cmd in [
            vec!["run", "--expr", "r = u", "--grid", "4x4x4"],
            vec!["profile", "r = u", "--grid", "4x4x4"],
            vec!["run", "--ranks", "2", "--grid", "6x6x6"],
        ] {
            let mut argv = cmd.clone();
            argv.extend(["--verify", "paranoid"]);
            let err = dispatch(&strs(&argv)).unwrap_err();
            assert!(err.contains("--verify"), "{cmd:?}: got {err}");
        }
    }

    #[test]
    fn profile_with_verification_smoke() {
        let dir = std::env::temp_dir().join("dfgc_test_profile_verify");
        std::fs::create_dir_all(&dir).unwrap();
        dispatch(&strs(&[
            "profile",
            "mag = sqrt(u*u + v*v + w*w)",
            "--grid",
            "6x6x6",
            "--verify",
            "full",
            "--out-dir",
            dir.to_str().unwrap(),
        ]))
        .unwrap();
    }

    #[test]
    fn distributed_run_via_cli() {
        let dir = std::env::temp_dir().join("dfgc_test_dist");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("dist.vtk");
        dispatch(&strs(&[
            "run",
            "--ranks",
            "3",
            "--grid",
            "9x8x8",
            "--device",
            "cpu",
            "--output",
            out.to_str().unwrap(),
        ]))
        .unwrap();
        let ds = read_vtk(&out).unwrap();
        assert!(ds.has_array("Q-Crit"));
    }

    #[test]
    fn distributed_run_survives_a_dead_rank_via_cli() {
        let dir = std::env::temp_dir().join("dfgc_test_dist_fault");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("dist-trace.json");
        dispatch(&strs(&[
            "run",
            "--ranks",
            "4",
            "--grid",
            "8x8x8",
            "--blocks",
            "2x2x1",
            "--device",
            "cpu",
            "--faults",
            "rank_die@1",
            "--deadline-ms",
            "300",
            "--trace",
            trace.to_str().unwrap(),
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&trace).unwrap();
        assert!(text.contains("recover.rank"), "recovery pass is traced");
    }

    #[test]
    fn distributed_flags_are_validated() {
        let base = ["run", "--ranks", "2", "--grid", "6x6x6"];
        for bad in [
            vec!["--expr", "r = u"],
            vec!["--workload", "warp"],
            vec!["--mode", "sideways"],
            vec!["--strategy", "streamed"],
            vec!["--deadline-ms", "soon"],
            vec!["--input", "in.vtk"],
        ] {
            let mut argv: Vec<&str> = base.to_vec();
            argv.extend(bad.iter());
            assert!(dispatch(&strs(&argv)).is_err(), "{bad:?} should fail");
        }
        assert!(dispatch(&strs(&["run", "--ranks", "0", "--grid", "4x4x4"])).is_err());
        assert!(dispatch(&strs(&["run", "--ranks", "2"])).is_err());
        // Model mode cannot write a dataset.
        assert!(dispatch(&strs(&[
            "run", "--ranks", "2", "--grid", "6x6x6", "--mode", "model", "--output", "x.vtk",
        ]))
        .is_err());
    }

    #[test]
    fn helpful_errors() {
        let err = dispatch(&strs(&["run", "--expr", "r = u"])).unwrap_err();
        assert!(err.contains("data source"));
        let err = dispatch(&strs(&["run", "--grid", "4x4x4"])).unwrap_err();
        assert!(err.contains("expression"));
        let err = dispatch(&strs(&[
            "run",
            "--expr",
            "r = u",
            "--grid",
            "4x4x4",
            "--strategy",
            "warp",
        ]))
        .unwrap_err();
        assert!(err.contains("unknown strategy"));
    }

    #[test]
    fn serve_smoke() {
        // Start the server through the real subcommand, discover its port
        // via --addr-file, drive it with bench-clients, shut down cleanly.
        let dir = std::env::temp_dir().join(format!("dfgc-serve-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let addr_file = dir.join("addr");
        let addr_arg = addr_file.to_str().unwrap().to_string();

        let server = std::thread::spawn({
            let addr_arg = addr_arg.clone();
            move || {
                dispatch(&strs(&[
                    "serve",
                    "--addr",
                    "127.0.0.1:0",
                    "--addr-file",
                    &addr_arg,
                    "--device",
                    "cpu",
                ]))
            }
        });
        let addr = {
            let mut tries = 0;
            loop {
                if let Ok(a) = std::fs::read_to_string(&addr_file) {
                    if !a.is_empty() {
                        break a;
                    }
                }
                tries += 1;
                assert!(tries < 200, "server never wrote its address");
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
        };

        dispatch(&strs(&[
            "bench-clients",
            "--addr",
            &addr,
            "--tenants",
            "2",
            "--requests",
            "3",
            "--grid",
            "6x6x6",
        ]))
        .unwrap();

        let mut client = dfg_serve::Client::connect(&addr).unwrap();
        client.shutdown().unwrap();
        server.join().unwrap().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn serve_and_bench_flag_validation() {
        assert!(
            dispatch(&strs(&["bench-clients"])).is_err(),
            "--addr required"
        );
        assert!(dispatch(&strs(&["serve", "--queue", "lots"])).is_err());
        assert!(dispatch(&strs(&["serve", "--coalesce", "maybe"])).is_err());
        assert!(dispatch(&strs(&["serve", "--quota-mb", "much"])).is_err());
        assert!(dispatch(&strs(&["serve", "--deadline-ms", "soon"])).is_err());
        assert!(dispatch(&strs(&["serve", "--idle-ttl-s", "-5"])).is_err());
        assert!(dispatch(&strs(&["serve", "--max-line-kb", "big"])).is_err());
        assert!(dispatch(&strs(&["serve", "--pressure-mb", "lots"])).is_err());
        assert!(dispatch(&strs(&["serve", "--conn-faults", "explode@1"])).is_err());
    }
}
