#![warn(missing_docs)]

//! A small flow solver: the *in situ* host simulation substrate.
//!
//! The paper's framework is designed for in-situ use inside a running
//! simulation (§I: *"the increasing power cost of data movement will force
//! visualization and analysis to occur in situ"*). Its host was an RT DNS
//! code we cannot ship, so this crate provides an honest miniature: a 3D
//! periodic velocity field advanced by **semi-Lagrangian advection** with
//! explicit diffusion — unconditionally stable, deterministic, and
//! producing evolving vortical structure for the derived-field expressions
//! to chase.
//!
//! Scheme per step (uniform periodic grid, cell-centered):
//!
//! 1. *Advect*: `v⁺(x) = vⁿ(x − Δt·vⁿ(x))`, trilinear interpolation with
//!    periodic wrap (each component advected as a scalar).
//! 2. *Diffuse*: one explicit 7-point Laplacian application,
//!    `v⁺⁺ = v⁺ + ν·Δt·∇²v⁺` (ν clamped for stability).
//!
//! [`FlowSimulation::fields`] exposes the live arrays exactly the way the
//! paper's host hands NumPy arrays to the framework.
//!
//! ```
//! use dfg_mesh::RtWorkload;
//! use dfg_sim::FlowSimulation;
//!
//! let mut sim = FlowSimulation::from_workload([8, 8, 8], &RtWorkload::paper_default());
//! let e0 = sim.kinetic_energy();
//! sim.viscosity = 0.02;
//! sim.step(0.01);
//! assert_eq!(sim.steps(), 1);
//! assert!(sim.kinetic_energy() < e0, "viscosity dissipates energy");
//! let fields = sim.fields();
//! assert!(fields.get("u").is_some());
//! ```

use dfg_core::FieldSet;
use dfg_mesh::{RectilinearMesh, RtWorkload};
use rayon::prelude::*;

/// A periodic 3D velocity field advanced in time.
#[derive(Debug, Clone)]
pub struct FlowSimulation {
    mesh: RectilinearMesh,
    dims: [usize; 3],
    spacing: [f32; 3],
    u: Vec<f32>,
    v: Vec<f32>,
    w: Vec<f32>,
    /// Kinematic viscosity.
    pub viscosity: f32,
    time: f32,
    steps: usize,
    /// Engine-facing field set, kept across steps so per-field generations
    /// are stable: coordinates and `dims` never change after construction,
    /// and only `u`/`v`/`w` are re-synced (bumping their generations) after
    /// a [`FlowSimulation::step`]. A persistent [`dfg_core::Session`] can
    /// therefore skip re-uploading the static fields every cycle.
    fields: FieldSet,
    fields_dirty: bool,
}

fn engine_fields(mesh: &RectilinearMesh, u: &[f32], v: &[f32], w: &[f32]) -> FieldSet {
    let mut fs = FieldSet::new(mesh.ncells());
    let (x, y, z) = mesh.coord_arrays();
    fs.insert_scalar("x", x).expect("mesh length");
    fs.insert_scalar("y", y).expect("mesh length");
    fs.insert_scalar("z", z).expect("mesh length");
    fs.insert_scalar("u", u.to_vec()).expect("state length");
    fs.insert_scalar("v", v.to_vec()).expect("state length");
    fs.insert_scalar("w", w.to_vec()).expect("state length");
    fs.insert_small("dims", mesh.dims_buffer());
    fs
}

impl FlowSimulation {
    /// Start from the synthetic RT-like workload on a unit-cube grid of
    /// `dims` cells.
    pub fn from_workload(dims: [usize; 3], workload: &RtWorkload) -> Self {
        let mesh = RectilinearMesh::unit_cube(dims);
        let (u, v, w) = workload.sample_velocity(&mesh);
        let spacing = [
            1.0 / dims[0] as f32,
            1.0 / dims[1] as f32,
            1.0 / dims[2] as f32,
        ];
        let fields = engine_fields(&mesh, &u, &v, &w);
        FlowSimulation {
            mesh,
            dims,
            spacing,
            u,
            v,
            w,
            viscosity: 1e-4,
            time: 0.0,
            steps: 0,
            fields,
            fields_dirty: false,
        }
    }

    /// Start from explicit component arrays (must match `dims`).
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn from_components(dims: [usize; 3], u: Vec<f32>, v: Vec<f32>, w: Vec<f32>) -> Self {
        let n = dims[0] * dims[1] * dims[2];
        assert_eq!(u.len(), n, "u length");
        assert_eq!(v.len(), n, "v length");
        assert_eq!(w.len(), n, "w length");
        let mesh = RectilinearMesh::unit_cube(dims);
        let spacing = [
            1.0 / dims[0] as f32,
            1.0 / dims[1] as f32,
            1.0 / dims[2] as f32,
        ];
        let fields = engine_fields(&mesh, &u, &v, &w);
        FlowSimulation {
            mesh,
            dims,
            spacing,
            u,
            v,
            w,
            viscosity: 1e-4,
            time: 0.0,
            steps: 0,
            fields,
            fields_dirty: false,
        }
    }

    /// Simulated time.
    pub fn time(&self) -> f32 {
        self.time
    }

    /// Steps taken.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// The grid.
    pub fn mesh(&self) -> &RectilinearMesh {
        &self.mesh
    }

    /// Current velocity component views.
    pub fn velocity(&self) -> (&[f32], &[f32], &[f32]) {
        (&self.u, &self.v, &self.w)
    }

    /// Kinetic energy ½∑|v|² (per-cell sum; diagnostic).
    pub fn kinetic_energy(&self) -> f64 {
        let mut e = 0.0f64;
        for i in 0..self.u.len() {
            e += 0.5
                * (self.u[i] as f64 * self.u[i] as f64
                    + self.v[i] as f64 * self.v[i] as f64
                    + self.w[i] as f64 * self.w[i] as f64);
        }
        e
    }

    /// Periodic trilinear sample of a scalar field at grid-fraction
    /// coordinates (units of cells, cell-centered at integer + 0).
    fn sample_periodic(field: &[f32], dims: [usize; 3], gx: f32, gy: f32, gz: f32) -> f32 {
        let [nx, ny, nz] = dims;
        let wrap = |a: i64, n: usize| -> usize { (a.rem_euclid(n as i64)) as usize };
        let fx = gx.floor();
        let fy = gy.floor();
        let fz = gz.floor();
        let (tx, ty, tz) = (gx - fx, gy - fy, gz - fz);
        let (i0, j0, k0) = (fx as i64, fy as i64, fz as i64);
        let mut acc = 0.0f32;
        for dk in 0..2 {
            for dj in 0..2 {
                for di in 0..2 {
                    let wgt = (if di == 0 { 1.0 - tx } else { tx })
                        * (if dj == 0 { 1.0 - ty } else { ty })
                        * (if dk == 0 { 1.0 - tz } else { tz });
                    let idx = wrap(i0 + di as i64, nx)
                        + nx * (wrap(j0 + dj as i64, ny) + ny * wrap(k0 + dk as i64, nz));
                    acc += wgt * field[idx];
                }
            }
        }
        acc
    }

    /// Advance one time step of `dt`.
    pub fn step(&mut self, dt: f32) {
        let dims = self.dims;
        let [nx, ny, _] = dims;
        let sp = self.spacing;
        let (u0, v0, w0) = (self.u.clone(), self.v.clone(), self.w.clone());

        // 1. Semi-Lagrangian advection of each component.
        let advect = |out: &mut [f32], field: &[f32]| {
            out.par_chunks_mut(nx * ny)
                .enumerate()
                .for_each(|(k, slab)| {
                    for j in 0..ny {
                        for i in 0..nx {
                            let idx = i + nx * (j + ny * k);
                            // Departure point in grid-fraction coordinates.
                            let gx = i as f32 - dt * u0[idx] / sp[0];
                            let gy = j as f32 - dt * v0[idx] / sp[1];
                            let gz = k as f32 - dt * w0[idx] / sp[2];
                            slab[j * nx + i] = Self::sample_periodic(field, dims, gx, gy, gz);
                        }
                    }
                });
        };
        let mut u1 = vec![0.0f32; self.u.len()];
        let mut v1 = vec![0.0f32; self.v.len()];
        let mut w1 = vec![0.0f32; self.w.len()];
        advect(&mut u1, &u0);
        advect(&mut v1, &v0);
        advect(&mut w1, &w0);

        // 2. Explicit diffusion, stability-clamped: ν·Δt/h² ≤ 1/8 per axis.
        let h2 = sp[0].min(sp[1]).min(sp[2]).powi(2);
        let alpha = (self.viscosity * dt / h2).min(0.125);
        if alpha > 0.0 {
            let diffuse = |out: &mut [f32], field: &[f32]| {
                let [nx, ny, nz] = dims;
                out.par_chunks_mut(nx * ny)
                    .enumerate()
                    .for_each(|(k, slab)| {
                        let km = (k + nz - 1) % nz;
                        let kp = (k + 1) % nz;
                        for j in 0..ny {
                            let jm = (j + ny - 1) % ny;
                            let jp = (j + 1) % ny;
                            for i in 0..nx {
                                let im = (i + nx - 1) % nx;
                                let ip = (i + 1) % nx;
                                let at = |ii: usize, jj: usize, kk: usize| {
                                    field[ii + nx * (jj + ny * kk)]
                                };
                                let c = at(i, j, k);
                                let lap = at(im, j, k)
                                    + at(ip, j, k)
                                    + at(i, jm, k)
                                    + at(i, jp, k)
                                    + at(i, j, km)
                                    + at(i, j, kp)
                                    - 6.0 * c;
                                slab[j * nx + i] = c + alpha * lap;
                            }
                        }
                    });
            };
            let mut u2 = vec![0.0f32; u1.len()];
            let mut v2 = vec![0.0f32; v1.len()];
            let mut w2 = vec![0.0f32; w1.len()];
            diffuse(&mut u2, &u1);
            diffuse(&mut v2, &v1);
            diffuse(&mut w2, &w1);
            self.u = u2;
            self.v = v2;
            self.w = w2;
        } else {
            self.u = u1;
            self.v = v1;
            self.w = w1;
        }
        self.time += dt;
        self.steps += 1;
        self.fields_dirty = true;
    }

    /// Expose the live arrays to the derived-field framework, exactly as
    /// the paper's host hands NumPy arrays over (§III-D).
    ///
    /// The returned [`FieldSet`] is persistent: the mesh coordinates and
    /// `dims` keep their original generations forever, while `u`/`v`/`w`
    /// are re-synced in place (bumping only *their* generations) the first
    /// time this is called after a [`step`](FlowSimulation::step). Feeding
    /// the same set to a [`dfg_core::Session`] each cycle therefore
    /// re-uploads exactly the three velocity components and nothing else.
    pub fn fields(&mut self) -> &FieldSet {
        if self.fields_dirty {
            self.fields
                .update_scalar("u", &self.u)
                .expect("state length");
            self.fields
                .update_scalar("v", &self.v)
                .expect("state length");
            self.fields
                .update_scalar("w", &self.w)
                .expect("state length");
            self.fields_dirty = false;
        }
        &self.fields
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_field_is_a_fixed_point() {
        let n = 8usize;
        let c = vec![0.75f32; n * n * n];
        let mut sim = FlowSimulation::from_components([n, n, n], c.clone(), c.clone(), c.clone());
        sim.viscosity = 0.0;
        for _ in 0..5 {
            sim.step(0.01);
        }
        for (i, &val) in sim.velocity().0.iter().enumerate() {
            assert!((val - 0.75).abs() < 1e-5, "u[{i}] = {val}");
        }
        assert_eq!(sim.steps(), 5);
        assert!((sim.time() - 0.05).abs() < 1e-6);
    }

    #[test]
    fn uniform_flow_translates_a_blob_periodically() {
        // Pure +x advection at one cell per step: a marked cell pattern in
        // `v` shifts right each step and wraps.
        let n = 8usize;
        let dx = 1.0 / n as f32;
        let u = vec![dx / 0.01; n * n * n]; // one cell per dt=0.01
        let mut vblob = vec![0.0f32; n * n * n];
        vblob[0] = 1.0; // cell (0,0,0)
        let mut sim = FlowSimulation::from_components([n, n, n], u, vblob, vec![0.0; n * n * n]);
        sim.viscosity = 0.0;
        sim.step(0.01);
        let v = sim.velocity().1;
        assert!(
            (v[1] - 1.0).abs() < 1e-4,
            "blob should be at x=1, v[1]={}",
            v[1]
        );
        assert!(v[0].abs() < 1e-4);
        // Seven more steps: wraps back to the origin.
        for _ in 0..7 {
            sim.step(0.01);
        }
        let v = sim.velocity().1;
        assert!((v[0] - 1.0).abs() < 1e-3, "periodic wrap, v[0]={}", v[0]);
    }

    #[test]
    fn diffusion_decays_kinetic_energy() {
        let mut sim = FlowSimulation::from_workload([12, 12, 12], &RtWorkload::paper_default());
        sim.viscosity = 0.05;
        let e0 = sim.kinetic_energy();
        for _ in 0..10 {
            sim.step(0.005);
        }
        let e1 = sim.kinetic_energy();
        assert!(e1 < e0, "energy must decay: {e0} -> {e1}");
        assert!(e1 > 0.0, "but not vanish in 10 steps");
    }

    #[test]
    fn advection_is_stable_at_large_cfl() {
        // Semi-Lagrangian stability: values stay within the initial range
        // even at CFL >> 1 (interpolation is a convex combination).
        let mut sim = FlowSimulation::from_workload([10, 10, 10], &RtWorkload::paper_default());
        sim.viscosity = 0.0;
        let max0 = sim
            .velocity()
            .0
            .iter()
            .chain(sim.velocity().1)
            .chain(sim.velocity().2)
            .fold(0.0f32, |a, &x| a.max(x.abs()));
        for _ in 0..20 {
            sim.step(0.2); // CFL ~ several cells per step
        }
        let max1 = sim
            .velocity()
            .0
            .iter()
            .chain(sim.velocity().1)
            .chain(sim.velocity().2)
            .fold(0.0f32, |a, &x| a.max(x.abs()));
        assert!(max1 <= max0 * 1.0001, "no overshoot: {max0} -> {max1}");
        assert!(max1.is_finite());
    }

    #[test]
    fn fields_are_engine_ready() {
        use dfg_core::{Engine, Strategy};
        use dfg_ocl::DeviceProfile;
        let mut sim = FlowSimulation::from_workload([8, 8, 8], &RtWorkload::paper_default());
        sim.step(0.01);
        let mut engine = Engine::new(DeviceProfile::nvidia_m2050());
        let fields = sim.fields().clone();
        let report = engine
            .derive(
                "w_mag = norm(curl(u, v, w, dims, x, y, z))",
                &fields,
                Strategy::Fusion,
            )
            .expect("in-situ derive from live state");
        assert!(report.field.is_some());
    }

    #[test]
    fn field_generations_are_stable_across_steps() {
        let mut sim = FlowSimulation::from_workload([6, 6, 6], &RtWorkload::paper_default());
        let before: Vec<u64> = ["x", "y", "z", "dims", "u"]
            .iter()
            .map(|n| sim.fields().get(n).expect("present").generation())
            .collect();
        sim.step(0.01);
        sim.step(0.01);
        let u_live = sim.velocity().0.to_vec();
        let fields = sim.fields();
        // Static fields keep their generations; velocities were bumped.
        for (i, name) in ["x", "y", "z", "dims"].iter().enumerate() {
            assert_eq!(
                fields.get(name).expect("present").generation(),
                before[i],
                "{name} must not be re-touched by stepping"
            );
        }
        assert!(fields.get("u").expect("present").generation() > before[4]);
        // The synced arrays really are the live state.
        assert_eq!(
            fields.get("u").expect("present").data.as_deref(),
            Some(u_live.as_slice())
        );
    }
}
