//! Persistent work-stealing thread pool for host-side kernel execution.
//!
//! The paper's premise is that derived-field generation should run "as fast
//! as the many-core hardware allows", yet spawning an OS thread per kernel
//! launch costs tens of microseconds — more than a small kernel's entire
//! body. This crate keeps a fixed set of workers alive for the whole
//! process (parked on a condvar when idle), so a launch is a queue push and
//! a wakeup rather than a `clone(2)`.
//!
//! # Architecture
//!
//! * One global [`Pool`], built lazily on first use and sized by the
//!   `DFG_NUM_THREADS` environment variable (falling back to
//!   [`std::thread::available_parallelism`]).
//! * Each worker owns a deque of jobs; submitters distribute jobs
//!   round-robin across the deques and idle workers *steal* from their
//!   siblings before parking, so an imbalanced level never leaves a worker
//!   idle while another has a backlog.
//! * The core primitive is [`parallel_for`]: run `f(0..n)` with the calling
//!   thread participating. Blocking helpers *help* — while waiting for
//!   their spawned jobs they pop and run other pool jobs — so nested
//!   `parallel_for` calls (a branch-parallel level whose kernels chunk
//!   internally) cannot deadlock the fixed worker set.
//!
//! # Determinism
//!
//! `parallel_for` promises nothing about *which* thread runs an index, but
//! callers in this workspace only ever write disjoint output ranges per
//! index, so results are bit-identical for any thread count — including
//! `DFG_NUM_THREADS=1`, which short-circuits to an inline loop on the
//! calling thread. Tests can force that path per-thread with
//! [`with_serial`].

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

type Job = Box<dyn FnOnce() + Send>;

/// Queues + parking shared between workers and submitters.
struct Shared {
    /// One deque per worker; submitters push round-robin, owners pop
    /// front, thieves (siblings and helping callers) steal from any.
    locals: Vec<Mutex<VecDeque<Job>>>,
    /// Jobs pushed but not yet claimed. Checked under `sleep` before a
    /// worker parks, so a push-then-notify can never be lost.
    pending: AtomicUsize,
    sleep: Mutex<()>,
    wake: Condvar,
    shutdown: AtomicBool,
    /// Round-robin cursor for job placement.
    place: AtomicUsize,
    /// Lifetime count of jobs executed by pool workers (not helpers).
    executed: AtomicU64,
    /// Lifetime count of jobs claimed from a deque the popper doesn't own.
    steals: AtomicU64,
}

impl Shared {
    /// Pop a job: own deque first, then steal from siblings.
    /// `owner` is `None` for threads outside the pool (helping callers).
    fn pop(&self, owner: Option<usize>) -> Option<Job> {
        if let Some(me) = owner {
            if let Some(job) = self.locals[me].lock().unwrap().pop_front() {
                self.pending.fetch_sub(1, Ordering::Relaxed);
                return Some(job);
            }
        }
        let start = owner.map_or(0, |me| me + 1);
        for k in 0..self.locals.len() {
            let q = (start + k) % self.locals.len();
            if owner == Some(q) {
                continue;
            }
            if let Some(job) = self.locals[q].lock().unwrap().pop_front() {
                self.pending.fetch_sub(1, Ordering::Relaxed);
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some(job);
            }
        }
        None
    }

    /// Queue a job on the next deque in round-robin order and wake a worker.
    fn push(&self, job: Job) {
        let slot = self.place.fetch_add(1, Ordering::Relaxed) % self.locals.len();
        self.pending.fetch_add(1, Ordering::Relaxed);
        self.locals[slot].lock().unwrap().push_back(job);
        // Taking the sleep lock (even empty) fences against a worker that
        // saw pending == 0 but has not yet parked; notify while holding it.
        let _g = self.sleep.lock().unwrap();
        self.wake.notify_all();
    }
}

fn worker_loop(shared: Arc<Shared>, me: usize) {
    loop {
        if let Some(job) = shared.pop(Some(me)) {
            shared.executed.fetch_add(1, Ordering::Relaxed);
            job();
            continue;
        }
        let guard = shared.sleep.lock().unwrap();
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        if shared.pending.load(Ordering::Acquire) > 0 {
            continue; // a job arrived between pop() and lock(); retry
        }
        drop(shared.wake.wait(guard).unwrap());
    }
}

/// A persistent pool of worker threads.
///
/// Most code should use the process-global pool via [`parallel_for`] /
/// [`current_num_threads`]; constructing a [`Pool`] directly is for
/// benchmarks and tests that need a specific worker count.
pub struct Pool {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    threads: usize,
}

impl Pool {
    /// Spawn a pool with `threads` workers. `threads <= 1` spawns no
    /// workers at all: every [`Pool::parallel_for`] runs inline.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let nworkers = if threads == 1 { 0 } else { threads };
        let shared = Arc::new(Shared {
            locals: (0..nworkers.max(1))
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            pending: AtomicUsize::new(0),
            sleep: Mutex::new(()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
            place: AtomicUsize::new(0),
            executed: AtomicU64::new(0),
            steals: AtomicU64::new(0),
        });
        let workers = (0..nworkers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("dfg-exec-{i}"))
                    .spawn(move || worker_loop(shared, i))
                    .expect("spawn dfg-exec worker")
            })
            .collect();
        Pool {
            shared,
            workers,
            threads,
        }
    }

    /// The worker count this pool was sized for (≥ 1; `1` means inline).
    pub fn num_threads(&self) -> usize {
        self.threads
    }

    /// Jobs currently queued and unclaimed across all deques.
    pub fn queue_depth(&self) -> usize {
        self.shared.pending.load(Ordering::Relaxed)
    }

    /// Lifetime `(jobs_executed_by_workers, jobs_stolen)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.shared.executed.load(Ordering::Relaxed),
            self.shared.steals.load(Ordering::Relaxed),
        )
    }

    /// Run `f(i)` for every `i in 0..n`, with the calling thread
    /// participating and blocking until all indices have completed.
    ///
    /// Indices are claimed from a shared counter, so distribution is
    /// dynamic; a panic in `f` is caught on whichever thread hit it and
    /// re-raised on the caller once all in-flight work has drained.
    pub fn parallel_for<F>(&self, n: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        if n == 0 {
            return;
        }
        if self.threads <= 1 || n == 1 || serial_override() {
            for i in 0..n {
                f(i);
            }
            return;
        }
        let state = Arc::new(ForState {
            next: AtomicUsize::new(0),
            n,
            jobs_done: Mutex::new(0),
            all_done: Condvar::new(),
            panicked: AtomicBool::new(false),
            panic: Mutex::new(None),
        });
        // Erase the borrow: jobs are 'static, but we block below until
        // every spawned job has finished, so `f` outlives all uses.
        let func: &(dyn Fn(usize) + Sync) = &f;
        let func: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(func) };
        let spawned = (n - 1).min(self.threads.saturating_sub(1)).max(1);
        for _ in 0..spawned {
            let state = Arc::clone(&state);
            self.shared.push(Box::new(move || {
                state.drain(func);
                state.finish_job();
            }));
        }
        state.drain(&f);
        // Help: while our jobs are outstanding, run other pool work (they
        // may be queued behind us, or be nested loops of our own tasks).
        loop {
            {
                let done = state.jobs_done.lock().unwrap();
                if *done == spawned {
                    break;
                }
            }
            if let Some(job) = self.shared.pop(None) {
                job();
                continue;
            }
            let done = state.jobs_done.lock().unwrap();
            if *done == spawned {
                break;
            }
            // Timed wait: a job we could help with may be pushed between
            // the pop above and this wait, so never park unconditionally.
            drop(
                state
                    .all_done
                    .wait_timeout(done, Duration::from_micros(200))
                    .unwrap(),
            );
        }
        let payload = state.panic.lock().unwrap().take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _g = self.shared.sleep.lock().unwrap();
            self.shared.wake.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Shared progress for one `parallel_for` call.
struct ForState {
    next: AtomicUsize,
    n: usize,
    jobs_done: Mutex<usize>,
    all_done: Condvar,
    panicked: AtomicBool,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl ForState {
    /// Claim and run indices until the counter is exhausted (or a panic
    /// elsewhere aborts the loop — the panic is about to propagate anyway).
    fn drain(&self, f: &(dyn Fn(usize) + Sync)) {
        loop {
            if self.panicked.load(Ordering::Relaxed) {
                return;
            }
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.n {
                return;
            }
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(i))) {
                self.panicked.store(true, Ordering::Relaxed);
                let mut slot = self.panic.lock().unwrap();
                if slot.is_none() {
                    *slot = Some(payload);
                }
                return;
            }
        }
    }

    fn finish_job(&self) {
        let mut done = self.jobs_done.lock().unwrap();
        *done += 1;
        self.all_done.notify_all();
    }
}

/// Read `DFG_NUM_THREADS`; empty or unparseable values fall back to
/// [`std::thread::available_parallelism`].
fn configured_threads() -> usize {
    match std::env::var("DFG_NUM_THREADS") {
        Ok(s) if !s.trim().is_empty() => match s.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => default_threads(),
        },
        _ => default_threads(),
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// The process-global pool, built on first use. `DFG_NUM_THREADS` is read
/// once, here; changing it after the first launch has no effect.
pub fn global() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool::new(configured_threads()))
}

/// Worker count of the global pool (≥ 1), honoring `DFG_NUM_THREADS` and
/// any active [`with_serial`] override.
pub fn current_num_threads() -> usize {
    if serial_override() {
        1
    } else {
        global().num_threads()
    }
}

/// Run `f(i)` for `i in 0..n` on the global pool. See
/// [`Pool::parallel_for`].
pub fn parallel_for<F>(n: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    global().parallel_for(n, f);
}

/// The chunk size a length-`n` loop should actually split at: `min_chunk`
/// scaled up so the loop yields at most `4 × threads` chunks (bounding
/// queue traffic), and the whole range when only one thread would run.
pub fn effective_chunk(n: usize, min_chunk: usize) -> usize {
    let threads = current_num_threads();
    if threads <= 1 {
        return n.max(1);
    }
    min_chunk.max(n.div_ceil(threads * 4)).max(1)
}

std::thread_local! {
    static SERIAL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn serial_override() -> bool {
    SERIAL.with(|s| s.get())
}

/// Force every `parallel_for` reached from this thread during `f` to run
/// inline (as if `DFG_NUM_THREADS=1`), including nested loops — the
/// serial-vs-parallel bit-parity tests diff against this path without
/// needing a separate process.
pub fn with_serial<R>(f: impl FnOnce() -> R) -> R {
    SERIAL.with(|s| {
        let prev = s.replace(true);
        let out = f();
        s.set(prev);
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn parallel_for_covers_every_index_once() {
        let pool = Pool::new(4);
        let n = 10_000;
        let hits: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        pool.parallel_for(n, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn pool_is_reusable_across_many_launches() {
        let pool = Pool::new(3);
        let total = AtomicUsize::new(0);
        for _ in 0..100 {
            pool.parallel_for(17, |_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 1700);
        // Every queued job was claimed — by a worker or a helping caller.
        assert_eq!(pool.queue_depth(), 0);
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = Pool::new(1);
        assert_eq!(pool.num_threads(), 1);
        let tid = std::thread::current().id();
        pool.parallel_for(64, |_| {
            assert_eq!(std::thread::current().id(), tid);
        });
        assert_eq!(pool.queue_depth(), 0);
        assert_eq!(pool.stats(), (0, 0));
    }

    #[test]
    fn nested_parallel_for_completes() {
        let pool = Arc::new(Pool::new(2));
        let total = AtomicUsize::new(0);
        let p = Arc::clone(&pool);
        pool.parallel_for(8, |_| {
            p.parallel_for(32, |_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 8 * 32);
    }

    #[test]
    fn panic_propagates_to_caller() {
        let pool = Pool::new(2);
        let hit = catch_unwind(AssertUnwindSafe(|| {
            pool.parallel_for(100, |i| {
                if i == 37 {
                    panic!("index 37");
                }
            });
        }));
        assert!(hit.is_err());
        // The pool must still be usable after a propagated panic.
        let total = AtomicUsize::new(0);
        pool.parallel_for(10, |_| {
            total.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn with_serial_forces_inline_execution() {
        let pool = Pool::new(4);
        let tid = std::thread::current().id();
        with_serial(|| {
            pool.parallel_for(256, |_| {
                assert_eq!(std::thread::current().id(), tid);
            });
            assert_eq!(current_num_threads(), 1);
        });
    }

    #[test]
    fn effective_chunk_honors_thread_count() {
        // Serial: the whole range is one chunk regardless of min_chunk.
        with_serial(|| {
            assert_eq!(effective_chunk(100_000, 16), 100_000);
            assert_eq!(effective_chunk(0, 16), 1);
        });
    }

    #[test]
    fn zero_length_loop_is_a_no_op() {
        let pool = Pool::new(2);
        pool.parallel_for(0, |_| panic!("no indices expected"));
    }
}
