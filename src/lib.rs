//! # dfg — Dynamic Derived Field Generation on Many-Core Architectures
//!
//! A Rust reproduction of Harrison, Navrátil, Moussalem, Jiang & Childs,
//! *"Efficient Dynamic Derived Field Generation on Many-Core Architectures
//! Using Python"* (SC 2012).
//!
//! This facade crate re-exports the full workspace:
//!
//! * [`mesh`] — rectilinear meshes, fields, sub-grid decomposition, the
//!   Table-I grid catalog, and the synthetic Rayleigh–Taylor workload.
//! * [`expr`] — the expression language: lexer, parser, AST, and lowering to
//!   dataflow network specifications.
//! * [`dataflow`] — dataflow networks: builder API, topological scheduling,
//!   liveness analysis, and per-strategy device-memory requirements.
//! * [`ocl`] — the simulated OpenCL device layer: platforms, devices,
//!   contexts, queues, buffers, kernels, profiling events, and the
//!   virtual-clock performance model.
//! * [`kernels`] — the shared primitive library (add … grad3d), the fused
//!   kernel generator, and hand-written reference kernels.
//! * [`core`] — execution strategies (*roundtrip*, *staged*, *fusion*), the
//!   engine, and the host interface.
//! * [`cluster`] — the simulated distributed-memory layer: ranks, ghost
//!   exchange, multi-device nodes, and the pseudocolor renderer.
//! * [`vtk`] — VTK-style datasets, legacy VTK file I/O, and the VisIt-like
//!   contract pipeline that hosts the framework in situ.
//! * [`sim`] — a miniature semi-Lagrangian flow solver: the in-situ host
//!   simulation substrate.
//! * [`trace`] — structured tracing spans with wall- and virtual-clock
//!   timestamps, Chrome `trace_event` export, and flame summaries (see
//!   `docs/OBSERVABILITY.md`).
//! * [`serve`] — the multi-tenant derived-field service: line-delimited
//!   JSON protocol, per-tenant sessions and quotas, admission control,
//!   and request coalescing (see `docs/SERVING.md`).
//!
//! ## Quickstart
//!
//! ```
//! use dfg::prelude::*;
//!
//! // Three scalar fields on a small mesh.
//! let n = 4usize * 4 * 4;
//! let mut fields = FieldSet::new(n);
//! fields.insert_scalar("u", vec![1.0; n]).unwrap();
//! fields.insert_scalar("v", vec![2.0; n]).unwrap();
//! fields.insert_scalar("w", vec![2.0; n]).unwrap();
//!
//! // Derive velocity magnitude with the fused execution strategy.
//! let mut engine = Engine::new(DeviceProfile::nvidia_m2050());
//! let report = engine
//!     .derive("v_mag = sqrt(u*u + v*v + w*w)", &fields, Strategy::Fusion)
//!     .unwrap();
//! let out = report.field.unwrap();
//! assert!((out.as_scalar().unwrap()[0] - 3.0).abs() < 1e-6);
//! // The profile reproduces Table II's fusion row: 3 writes, 1 read, 1 kernel.
//! assert_eq!(report.profile.table2_row(), (3, 1, 1));
//! ```

pub use dfg_cluster as cluster;
pub use dfg_core as core;
pub use dfg_dataflow as dataflow;
pub use dfg_expr as expr;
pub use dfg_kernels as kernels;
pub use dfg_mesh as mesh;
pub use dfg_ocl as ocl;
pub use dfg_serve as serve;
pub use dfg_sim as sim;
pub use dfg_trace as trace;
pub use dfg_vtk as vtk;

/// Convenient single-import surface for host applications.
pub mod prelude {
    pub use dfg_core::workloads::{Q_CRITERION, VELOCITY_MAGNITUDE, VORTICITY_MAGNITUDE};
    pub use dfg_core::{Engine, EngineOptions, ExecReport, FieldSet, FieldValue, Strategy};
    pub use dfg_mesh::{GridSpec, RectilinearMesh, RtWorkload, TABLE1_CATALOG};
    pub use dfg_ocl::{DeviceProfile, ExecMode};
}
