//! Strategy trade-offs: why a flexible framework needs more than one
//! execution strategy (§V-D).
//!
//! Walks the Q-criterion up the Table I grid catalog on the simulated
//! M2050 and shows the decision the paper's discussion describes: fusion
//! when it fits, staged when fusion's register model can't apply but memory
//! allows, roundtrip when device memory is the binding constraint, CPU when
//! nothing fits the GPU.
//!
//! ```sh
//! cargo run --example strategy_tradeoffs
//! ```

use dfg::core::{EngineOptions, FieldSet, Workload};
use dfg::dataflow::memreq_units;
use dfg::expr::compile;
use dfg::ocl::ExecMode;
use dfg::prelude::*;

fn main() {
    let spec = compile(Workload::QCriterion.source()).expect("Fig 3C compiles");
    let gpu = DeviceProfile::nvidia_m2050();
    println!(
        "Q-criterion on {} ({:.2} GB usable)",
        gpu.name,
        gpu.global_mem_bytes as f64 / 1e9
    );
    println!();
    println!(
        "{:<22} {:>9} {:>9} {:>9}   chosen",
        "grid", "roundtrip", "staged", "fusion"
    );
    println!("  (columns: predicted peak device GB per strategy)");
    println!("{}", "-".repeat(68));

    for grid in TABLE1_CATALOG {
        let n = grid.ncells();
        let mut need = Vec::new();
        for strategy in Strategy::ALL {
            let bytes = memreq_units(&spec, strategy)
                .expect("valid network")
                .bytes(n);
            need.push((strategy, bytes));
        }
        // Prefer fusion > staged > roundtrip among those that fit, as the
        // paper's discussion recommends.
        let chosen = [Strategy::Fusion, Strategy::Staged, Strategy::Roundtrip]
            .into_iter()
            .find(|s| {
                need.iter()
                    .any(|(st, b)| st == s && *b <= gpu.global_mem_bytes)
            });
        print!("{:<22}", grid.to_string());
        for (_, bytes) in &need {
            let gb = *bytes as f64 / 1e9;
            if *bytes <= gpu.global_mem_bytes {
                print!(" {gb:>9.2}");
            } else {
                print!(" {:>9}", format!("({gb:.2})"));
            }
        }
        match chosen {
            Some(s) => println!("   {s} on GPU"),
            None => println!("   CPU fallback"),
        }
    }

    // Demonstrate that the prediction matches reality: run the largest grid
    // in model mode and watch staged fail while fusion succeeds.
    println!();
    let grid = *TABLE1_CATALOG.last().expect("catalog non-empty");
    let mut engine = Engine::with_options(
        gpu.clone(),
        EngineOptions {
            mode: ExecMode::Model,
            ..Default::default()
        },
    );
    let fields = FieldSet::virtual_rt(grid.dims());
    for strategy in Strategy::ALL {
        match engine.derive(Workload::QCriterion.source(), &fields, strategy) {
            Ok(report) => println!(
                "{grid} under {strategy}: OK, {:.2} GB peak, {:.3} s modeled",
                report.high_water_bytes() as f64 / 1e9,
                report.device_seconds()
            ),
            Err(e) => println!("{grid} under {strategy}: {e}"),
        }
    }

    // The planner automates the paper's §V-D selection across devices and
    // strategies: ask it where to run a mid-sized grid.
    println!();
    let mid = TABLE1_CATALOG[7]; // 192 x 192 x 2048
    let plan = dfg::core::plan(
        &spec,
        mid.ncells(),
        &[DeviceProfile::intel_x5660(), gpu.clone()],
    )
    .expect("planning succeeds");
    println!(
        "planner ranking for {mid} ({} feasible options):",
        plan.feasible.len()
    );
    for opt in plan.feasible.iter().take(4) {
        println!(
            "  {:<9} on {:<32} {:>8.3} s, {:>6.2} GB",
            opt.strategy.name(),
            opt.device_name,
            opt.seconds,
            opt.peak_bytes as f64 / 1e9
        );
    }
    for (dev, strategy, bytes) in &plan.rejected {
        println!(
            "  rejected: {strategy} on device #{dev} needs {:.2} GB",
            *bytes as f64 / 1e9
        );
    }
    let best = plan.best().expect("something fits");
    println!("best: {} on {}", best.strategy.name(), best.device_name);
}
