//! In-situ pipeline: embedding the framework in a *running* simulation
//! (§III-D of the paper).
//!
//! A real (miniature) flow solver advances a periodic velocity field by
//! semi-Lagrangian advection; at each time step the framework derives
//! vorticity magnitude and the Q-criterion **in situ** from the solver's
//! live arrays — no file I/O — using multi-output fusion (one kernel
//! computes both fields). The pipeline result is reused across "renders"
//! within a step, exactly as the paper's VisIt host reuses the derived mesh
//! until the next time step arrives.
//!
//! The hot loop runs under a persistent [`Session`]: mesh coordinates and
//! `dims` upload once for the whole run, only the velocity fields the
//! solver actually changed are re-uploaded each step, and dynamic code
//! generation + kernel compilation happen exactly once.
//!
//! ```sh
//! cargo run --release --example insitu_pipeline
//! ```

use dfg::core::Workload;
use dfg::prelude::*;
use dfg::sim::FlowSimulation;

fn main() {
    let dims = [32usize, 32, 32];
    let mut sim = FlowSimulation::from_workload(dims, &RtWorkload::paper_default());
    sim.viscosity = 5e-4;
    let mut engine = Engine::new(DeviceProfile::nvidia_m2050());
    let mut session = engine.session();
    // One fused kernel computes both derived fields per step.
    let source = format!(
        "{}\nw_mag = norm(curl(u, v, w, dims, x, y, z))\n",
        Workload::QCriterion.source().trim_end()
    );

    println!(
        "in-situ derived fields over a live {}x{}x{} semi-Lagrangian flow solver",
        dims[0], dims[1], dims[2]
    );
    println!();
    println!(
        "{:>5} {:>9} {:>12} {:>12} {:>12} {:>10}",
        "step", "time", "energy", "max |ω|", "max Q", "derive ms"
    );
    println!("{}", "-".repeat(66));

    for step in 0..8 {
        sim.step(0.02);
        let (outputs, report) = session
            .derive_many(
                &source,
                &["w_mag", "q_crit"],
                sim.fields(),
                Strategy::Fusion,
            )
            .expect("in-situ multi-output derive");
        let w_mag = outputs[0].1.as_scalar().expect("scalar");
        let q = outputs[1].1.as_scalar().expect("scalar");
        let max_w = w_mag.iter().cloned().fold(f32::MIN, f32::max);
        let max_q = q.iter().cloned().fold(f32::MIN, f32::max);
        println!(
            "{:>5} {:>9.3} {:>12.3} {:>12.3} {:>12.3} {:>10.3}",
            step,
            sim.time(),
            sim.kinetic_energy(),
            max_w,
            max_q,
            report.device_seconds() * 1e3,
        );
        // Subsequent renders of this step reuse `outputs` — the pipeline ran
        // once (a single fused kernel: check the event counts).
        assert_eq!(report.table2_row().2, 1, "one kernel for both outputs");
    }
    let stats = session.end();
    println!();
    println!("each step ran ONE fused kernel producing both w_mag and q_crit in situ.");
    println!(
        "session amortization: {} codegen+compile ({} cached), {} uploads ({} skipped: \
         coordinates and dims stayed device-resident)",
        stats.codegen_compiles, stats.codegen_cached, stats.uploads, stats.uploads_skipped
    );
}
