//! Vortex detection: the paper's motivating application (§IV-A).
//!
//! Runs all three evaluation expressions — velocity magnitude, vorticity
//! magnitude, and Q-criterion — over the synthetic Rayleigh–Taylor
//! workload, reports where rotation dominates strain, and renders a
//! pseudocolor slice of the Q-criterion to `vortex_q_criterion.ppm`.
//!
//! ```sh
//! cargo run --release --example vortex_detection
//! ```

use dfg::cluster::render::render_slice;
use dfg::core::{FieldSet, Workload};
use dfg::prelude::*;

fn main() {
    let dims = [64usize, 64, 64];
    let mesh = RectilinearMesh::unit_cube(dims);
    let fields = FieldSet::for_rt_mesh(&mesh, &RtWorkload::paper_default());
    let mut engine = Engine::new(DeviceProfile::nvidia_m2050());

    println!(
        "vortex detection on a {}x{}x{} RT-like field",
        dims[0], dims[1], dims[2]
    );
    println!();
    println!(
        "{:<22} {:>10} {:>10} {:>12} {:>10}",
        "expression", "min", "max", "device ms", "kernels"
    );
    println!("{}", "-".repeat(70));

    let mut q_field = None;
    for workload in Workload::ALL {
        let report = engine
            .derive(workload.source(), &fields, Strategy::Fusion)
            .expect("fusion run");
        let field = report.field.as_ref().expect("real mode");
        let data = field.as_scalar().expect("scalar result");
        let min = data.iter().cloned().fold(f32::MAX, f32::min);
        let max = data.iter().cloned().fold(f32::MIN, f32::max);
        println!(
            "{:<22} {:>10.4} {:>10.4} {:>12.3} {:>10}",
            workload.table2_name(),
            min,
            max,
            report.device_seconds() * 1e3,
            report.table2_row().2,
        );
        if workload == Workload::QCriterion {
            q_field = report.field;
        }
    }

    // Q > 0 marks rotation-dominated cells — vortex candidates.
    let q = q_field.expect("Q-criterion ran");
    let data = q.as_scalar().expect("scalar");
    let vortical = data.iter().filter(|&&v| v > 0.0).count();
    println!();
    println!(
        "{} of {} cells ({:.1}%) are rotation-dominated (Q > 0)",
        vortical,
        data.len(),
        100.0 * vortical as f64 / data.len() as f64
    );

    // Strongest vortex core.
    let (best, best_q) =
        data.iter().enumerate().fold(
            (0usize, f32::MIN),
            |acc, (i, &v)| if v > acc.1 { (i, v) } else { acc },
        );
    let (i, j, k) = (
        best % dims[0],
        (best / dims[0]) % dims[1],
        best / (dims[0] * dims[1]),
    );
    let c = mesh.cell_center(i, j, k);
    println!(
        "strongest core: Q = {best_q:.3} at cell ({i}, {j}, {k}) = ({:.3}, {:.3}, {:.3})",
        c[0], c[1], c[2]
    );

    let img = render_slice(data, dims, 2, k.min(dims[2] - 1));
    let path = std::path::Path::new("vortex_q_criterion.ppm");
    img.write_ppm(path).expect("write rendering");
    println!(
        "pseudocolor slice through the core written to {}",
        path.display()
    );

    // All three detectors in ONE pass: the combined program shares the
    // velocity-gradient tensor, and multi-output fusion computes everything
    // in a single generated kernel.
    let combined = format!(
        "{}\nv_mag = sqrt(u*u + v*v + w*w)\nwx = dw[1] - dv[2]\nwy = du[2] - dw[0]\nwz = dv[0] - du[1]\nw_mag = sqrt(wx*wx + wy*wy + wz*wz)\n",
        Workload::QCriterion.source().trim_end()
    );
    let (outputs, report) = engine
        .derive_many(
            &combined,
            &["v_mag", "w_mag", "q_crit"],
            &fields,
            Strategy::Fusion,
        )
        .expect("multi-output derive");
    let (writes, reads, kernels) = report.table2_row();
    println!();
    println!(
        "multi-output: {} derived fields from {kernels} fused kernel launch \
         ({writes} uploads, {reads} download, {:.3} ms modeled)",
        outputs.len(),
        report.device_seconds() * 1e3
    );
}
