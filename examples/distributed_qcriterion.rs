//! Distributed-memory Q-criterion: the paper's §V-C study as an example.
//!
//! Decomposes a global mesh into sub-grids, assigns them round-robin to
//! simulated MPI ranks (two devices per node, as on LLNL's Edge), exchanges
//! ghost cells over channels, computes the Q-criterion with the fusion
//! strategy on every rank, verifies the assembled result bit-for-bit
//! against a single-grid computation, and renders a slice.
//!
//! ```sh
//! cargo run --release --example distributed_qcriterion
//! ```

use dfg::cluster::{render::render_slice, run_distributed, Cluster, DistOptions};
use dfg::core::{FieldSet, Workload};
use dfg::ocl::ExecMode;
use dfg::prelude::*;

fn main() {
    let global_dims = [48usize, 48, 48];
    let nblocks = [2usize, 2, 3];
    let cluster = Cluster {
        nodes: 3,
        devices_per_node: 2,
        profile: DeviceProfile::nvidia_m2050(),
    };
    let global = RectilinearMesh::unit_cube(global_dims);
    let rt = RtWorkload::paper_default();

    println!(
        "distributed Q-criterion: {}³ cells, {} sub-grids, {} nodes × {} devices",
        global_dims[0],
        nblocks.iter().product::<usize>(),
        cluster.nodes,
        cluster.devices_per_node
    );
    let result = run_distributed(
        &global,
        nblocks,
        &rt,
        &cluster,
        &DistOptions {
            workload: Workload::QCriterion,
            strategy: Strategy::Fusion,
            mode: ExecMode::Real,
            ..Default::default()
        },
    )
    .expect("distributed run");

    let field = result.field.expect("real mode");
    println!("ranks used:              {}", result.ranks);
    println!("kernel launches (total): {}", result.total_kernel_execs);
    println!(
        "per-device peak memory:  {:.1} MB",
        result.max_high_water as f64 / 1e6
    );
    println!(
        "modeled makespan:        {:.3} ms (mean rank {:.3} ms)",
        result.makespan_seconds * 1e3,
        result.rank_device_seconds.iter().sum::<f64>() * 1e3 / result.ranks as f64
    );

    // Ground truth: the same field on one device.
    let fs = FieldSet::for_rt_mesh(&global, &rt);
    let mut engine = Engine::new(DeviceProfile::intel_x5660());
    let single = engine
        .derive(Workload::QCriterion.source(), &fs, Strategy::Fusion)
        .expect("single-grid run")
        .field
        .expect("real mode");
    let identical = field
        .iter()
        .zip(&single.data)
        .all(|(a, b)| a.to_bits() == b.to_bits());
    println!(
        "vs single grid:          {}",
        if identical {
            "bit-identical ✓"
        } else {
            "DIVERGED ✗"
        }
    );

    let img = render_slice(&field, global_dims, 2, global_dims[2] / 2);
    let path = std::path::Path::new("distributed_q_criterion.ppm");
    img.write_ppm(path).expect("write rendering");
    println!("rendering:               {}", path.display());
    assert!(identical);
}
