//! Quickstart: derive a field from three arrays in a dozen lines.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use dfg::prelude::*;

fn main() {
    // A host application has some arrays. Here: a 32³ mesh with the
    // synthetic Rayleigh–Taylor-like velocity field.
    let mesh = RectilinearMesh::unit_cube([32, 32, 32]);
    let fields = dfg::core::FieldSet::for_rt_mesh(&mesh, &RtWorkload::paper_default());

    // Hand the engine a user expression — the same text a VisIt user would
    // type — and pick an execution strategy.
    let mut engine = Engine::new(DeviceProfile::nvidia_m2050());
    let report = engine
        .derive("v_mag = sqrt(u*u + v*v + w*w)", &fields, Strategy::Fusion)
        .expect("derive velocity magnitude");

    let field = report.field.as_ref().expect("real-mode run returns data");
    let data = field.as_scalar().expect("scalar result");
    let max = data.iter().cloned().fold(f32::MIN, f32::max);
    let mean = data.iter().sum::<f32>() / data.len() as f32;

    println!("derived `v_mag` over {} cells", field.ncells);
    println!("  max  = {max:.4}");
    println!("  mean = {mean:.4}");
    println!();
    let (w, r, k) = report.table2_row();
    println!("device events: {w} writes, {r} reads, {k} kernel launch(es)");
    println!(
        "modeled device time: {:.3} ms",
        report.device_seconds() * 1e3
    );
    println!(
        "wall time:           {:.3} ms",
        report.wall.as_secs_f64() * 1e3
    );
    println!();
    println!("generated OpenCL-style kernel source:");
    println!("{}", report.generated_source.as_deref().unwrap_or("<none>"));
}
