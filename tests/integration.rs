//! Cross-crate integration tests: the full pipeline from expression text to
//! derived field, exercised through the `dfg` facade exactly as a host
//! application would use it.

use dfg::cluster::{run_distributed, Cluster, DistOptions};
use dfg::core::{EngineOptions, FieldSet, Workload};
use dfg::ocl::{EventKind, ExecMode};
use dfg::prelude::*;

fn rt_fields(dims: [usize; 3]) -> (RectilinearMesh, FieldSet) {
    let mesh = RectilinearMesh::unit_cube(dims);
    let fields = FieldSet::for_rt_mesh(&mesh, &RtWorkload::paper_default());
    (mesh, fields)
}

#[test]
fn facade_end_to_end_all_workloads_all_strategies() {
    let (_, fields) = rt_fields([10, 9, 8]);
    let mut engine = Engine::new(DeviceProfile::intel_x5660());
    for workload in Workload::ALL {
        let mut outputs = Vec::new();
        for strategy in Strategy::ALL {
            let report = engine
                .derive(workload.source(), &fields, strategy)
                .unwrap_or_else(|e| panic!("{workload}/{strategy}: {e}"));
            assert_eq!(report.table2_row(), workload.paper_table2(strategy));
            outputs.push(report.field.expect("real mode").data);
        }
        let reference = engine.run_reference(workload, &fields).expect("reference");
        let ref_data = reference.field.expect("real mode").data;
        let scale = ref_data.iter().fold(1e-6f32, |a, &x| a.max(x.abs()));
        for (i, out) in outputs.iter().enumerate() {
            for c in 0..out.len() {
                assert!(
                    (out[c] - ref_data[c]).abs() <= 1e-4 * scale,
                    "{workload} strategy #{i} vs reference at {c}"
                );
            }
        }
    }
}

#[test]
fn oom_cascade_matches_paper_discussion() {
    // §V-D: cases exist where staged fails on the GPU while the CPU (or a
    // leaner strategy) succeeds — the motivation for strategy flexibility.
    let grid = [192usize, 192, 1024];
    let fields = FieldSet::virtual_rt(grid);
    let mut gpu = Engine::with_options(
        DeviceProfile::nvidia_m2050(),
        EngineOptions {
            mode: ExecMode::Model,
            ..Default::default()
        },
    );
    let mut cpu = Engine::with_options(
        DeviceProfile::intel_x5660(),
        EngineOptions {
            mode: ExecMode::Model,
            ..Default::default()
        },
    );
    let src = Workload::QCriterion.source();
    // GPU staged: fails on memory.
    assert!(gpu
        .derive(src, &fields, Strategy::Staged)
        .unwrap_err()
        .is_out_of_memory());
    // GPU fusion: fits and is fast.
    let gpu_fusion = gpu
        .derive(src, &fields, Strategy::Fusion)
        .expect("fusion fits");
    // CPU staged: always completes.
    let cpu_staged = cpu
        .derive(src, &fields, Strategy::Staged)
        .expect("CPU staged");
    // GPU roundtrip also completes (smallest device footprint).
    let gpu_rt = gpu
        .derive(src, &fields, Strategy::Roundtrip)
        .expect("GPU roundtrip");
    // The paper's observed ordering: CPU staged beats GPU roundtrip.
    assert!(
        cpu_staged.device_seconds() < gpu_rt.device_seconds(),
        "CPU staged {} should beat GPU roundtrip {}",
        cpu_staged.device_seconds(),
        gpu_rt.device_seconds()
    );
    // And GPU fusion beats both.
    assert!(gpu_fusion.device_seconds() < cpu_staged.device_seconds());
}

#[test]
fn profile_event_labels_are_meaningful() {
    let (_, fields) = rt_fields([6, 6, 6]);
    let mut engine = Engine::new(DeviceProfile::intel_x5660());
    let report = engine
        .derive(
            Workload::VorticityMagnitude.source(),
            &fields,
            Strategy::Staged,
        )
        .expect("staged run");
    let kernel_labels: Vec<&str> = report
        .profile
        .events
        .iter()
        .filter(|e| e.kind == EventKind::KernelExec)
        .map(|e| e.label.as_str())
        .collect();
    assert!(kernel_labels.contains(&"grad3d"));
    assert!(kernel_labels.iter().any(|l| l.starts_with("decompose_s")));
    assert!(kernel_labels.contains(&"sqrt"));
    // Fusion events carry the compile record.
    let report = engine
        .derive(
            Workload::VorticityMagnitude.source(),
            &fields,
            Strategy::Fusion,
        )
        .expect("fusion run");
    assert_eq!(report.profile.count(EventKind::KernelCompile), 1);
}

#[test]
fn distributed_pipeline_renders() {
    let global = RectilinearMesh::unit_cube([24, 24, 24]);
    let result = run_distributed(
        &global,
        [2, 2, 2],
        &RtWorkload::paper_default(),
        &Cluster {
            nodes: 2,
            devices_per_node: 2,
            profile: DeviceProfile::nvidia_m2050(),
        },
        &DistOptions {
            workload: Workload::QCriterion,
            strategy: Strategy::Fusion,
            mode: ExecMode::Real,
            ..Default::default()
        },
    )
    .expect("distributed run");
    let field = result.field.expect("real mode");
    let img = dfg::cluster::render::render_slice(&field, [24, 24, 24], 2, 12);
    assert_eq!((img.width, img.height), (24, 24));
    assert_eq!(img.pixels.len(), 3 * 24 * 24);
    // The Q-criterion changes sign, so the rendering uses the full
    // diverging map: both blue-ish and red-ish pixels appear.
    let has_blue = img.pixels.chunks(3).any(|p| p[2] > p[0].saturating_add(30));
    let has_red = img.pixels.chunks(3).any(|p| p[0] > p[2].saturating_add(30));
    assert!(has_blue && has_red, "diverging colormap not exercised");
}

#[test]
fn network_builder_api_direct_use() {
    // §III-B.1: the network definition API "can also be used directly from
    // Python, by a user or by a host application" — here, directly from
    // Rust, bypassing the parser.
    use dfg::dataflow::{FilterOp, NetworkBuilder};
    let mut b = NetworkBuilder::new();
    let u = b.input("u");
    let v = b.input("v");
    let uu = b.binary(FilterOp::Mul, u, u);
    let vv = b.binary(FilterOp::Mul, v, v);
    let sum = b.binary(FilterOp::Add, uu, vv);
    let mag = b.unary(FilterOp::Sqrt, sum);
    b.name(mag, "speed2d");
    let spec = b.finish(mag);

    let mut fields = FieldSet::new(4);
    fields
        .insert_scalar("u", vec![3.0, 0.0, 1.0, -3.0])
        .unwrap();
    fields
        .insert_scalar("v", vec![4.0, 2.0, 1.0, -4.0])
        .unwrap();
    let mut engine = Engine::new(DeviceProfile::intel_x5660());
    let out = engine
        .derive_spec(&spec, &fields, Strategy::Fusion)
        .expect("builder-made network runs")
        .field
        .expect("real mode");
    let s = out.as_scalar().expect("scalar");
    assert!((s[0] - 5.0).abs() < 1e-6);
    assert!((s[3] - 5.0).abs() < 1e-6);
}

#[test]
fn expression_errors_surface_cleanly() {
    let (_, fields) = rt_fields([4, 4, 4]);
    let mut engine = Engine::new(DeviceProfile::intel_x5660());
    // Syntax error.
    let err = engine
        .derive("v = sqrt(u", &fields, Strategy::Fusion)
        .unwrap_err();
    assert!(err.to_string().contains("expected"), "{err}");
    // Unknown function.
    let err = engine
        .derive("v = laplacian(u)", &fields, Strategy::Fusion)
        .unwrap_err();
    assert!(err.to_string().contains("unknown function"), "{err}");
    // Known function, wrong arity (curl is a compound sugar function).
    let err = engine
        .derive("v = curl(u)", &fields, Strategy::Fusion)
        .unwrap_err();
    assert!(err.to_string().contains("takes 7 argument"), "{err}");
    // Width misuse.
    let err = engine
        .derive(
            "v = sqrt(grad3d(u, dims, x, y, z))",
            &fields,
            Strategy::Fusion,
        )
        .unwrap_err();
    assert!(err.to_string().contains("invalid network"), "{err}");
}

#[test]
fn vector_valued_results_are_returned_as_vec4() {
    // A program whose final value is a gradient: the host gets a Vec4 field.
    let (mesh, fields) = rt_fields([6, 5, 4]);
    let mut engine = Engine::new(DeviceProfile::intel_x5660());
    for strategy in Strategy::ALL {
        let out = engine
            .derive("g = grad3d(u, dims, x, y, z)", &fields, strategy)
            .unwrap_or_else(|e| panic!("{strategy}: {e}"))
            .field
            .expect("real mode");
        assert_eq!(out.data.len(), 4 * mesh.ncells());
        let dx = out.component(0).expect("vec4 component");
        assert_eq!(dx.len(), mesh.ncells());
        assert!(out.as_scalar().is_none());
    }
}
