//! Host-substrate integration: solver → engine → dataset → VTK file →
//! reload → re-derive. Exercises the full in-situ round trip across
//! `dfg-sim`, `dfg-core`, and `dfg-vtk`.

use dfg::core::{FieldSet, Workload};
use dfg::prelude::*;
use dfg::sim::FlowSimulation;
use dfg::vtk::io::{from_vtk_string, to_vtk_string};
use dfg::vtk::{DataArray, RectilinearDataset};

#[test]
fn solver_state_round_trips_through_vtk_and_rederives() {
    // 1. Advance the solver a few steps.
    let dims = [10usize, 10, 10];
    let mut sim = FlowSimulation::from_workload(dims, &RtWorkload::paper_default());
    for _ in 0..3 {
        sim.step(0.01);
    }

    // 2. Derive the Q-criterion in situ.
    let mut engine = Engine::new(DeviceProfile::nvidia_m2050());
    let q_live = engine
        .derive(
            Workload::QCriterion.source(),
            sim.fields(),
            Strategy::Fusion,
        )
        .expect("in-situ derive")
        .field
        .expect("real mode");

    // 3. Checkpoint solver state + derived field to a VTK document.
    let (u, v, w) = sim.velocity();
    let mut ds = RectilinearDataset::new(sim.mesh().clone());
    ds.set_array("u", DataArray::scalar(u.to_vec())).unwrap();
    ds.set_array("v", DataArray::scalar(v.to_vec())).unwrap();
    ds.set_array("w", DataArray::scalar(w.to_vec())).unwrap();
    ds.set_array("q_crit", DataArray::scalar(q_live.data.clone()))
        .unwrap();
    let document = to_vtk_string(&ds, "checkpoint step 3");

    // 4. Reload the checkpoint and re-derive from the restored arrays.
    let restored = from_vtk_string(&document).expect("checkpoint parses");
    let mut fields = FieldSet::new(restored.ncells());
    let (x, y, z) = restored.mesh.coord_arrays();
    fields.insert_scalar("x", x).unwrap();
    fields.insert_scalar("y", y).unwrap();
    fields.insert_scalar("z", z).unwrap();
    fields.insert_small("dims", restored.mesh.dims_buffer());
    for name in ["u", "v", "w"] {
        fields
            .insert_scalar(name, restored.array(name).unwrap().data.clone())
            .unwrap();
    }
    let q_restored = engine
        .derive(Workload::QCriterion.source(), &fields, Strategy::Staged)
        .expect("re-derive from checkpoint")
        .field
        .expect("real mode");

    // 5. The checkpointed derived field, the reloaded copy, and the
    //    re-derivation all agree bit-for-bit (ASCII VTK round-trips f32
    //    exactly via the Debug format).
    let q_saved = restored.array("q_crit").unwrap();
    for i in 0..q_live.data.len() {
        assert_eq!(
            q_live.data[i].to_bits(),
            q_saved.data[i].to_bits(),
            "save at {i}"
        );
        assert_eq!(
            q_live.data[i].to_bits(),
            q_restored.data[i].to_bits(),
            "re-derive at {i}"
        );
    }
}

#[test]
fn multi_device_agrees_with_pipeline_on_solver_state() {
    // Cross-check two host paths over identical solver state: the VisIt-like
    // pipeline (single device) and single-node multi-device execution.
    use dfg::cluster::run_multi_device;

    let dims = [8usize, 8, 12];
    let mut sim = FlowSimulation::from_workload(dims, &RtWorkload::paper_default());
    sim.step(0.02);
    let fields = sim.fields().clone();

    let mut engine = Engine::new(DeviceProfile::nvidia_m2050());
    let single = engine
        .derive(
            Workload::VorticityMagnitude.source(),
            &fields,
            Strategy::Fusion,
        )
        .expect("single device")
        .field
        .expect("real mode");

    let multi = run_multi_device(
        Workload::VorticityMagnitude.source(),
        &fields,
        dims,
        &vec![DeviceProfile::nvidia_m2050(); 3],
        Strategy::Fusion,
    )
    .expect("multi device");

    assert_eq!(
        multi
            .field
            .data
            .iter()
            .map(|v| v.to_bits())
            .collect::<Vec<_>>(),
        single.data.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
    );
    assert_eq!(multi.device_profiles.len(), 3);
}
