//! Property-based tests over the full pipeline.
//!
//! The central property: for *any* well-formed expression program, all
//! three execution strategies produce bit-identical results to a simple
//! host-side interpreter of the dataflow network — parsing, lowering,
//! limited CSE, scheduling, kernel codegen and fusion never change the
//! computed arithmetic.

use proptest::prelude::*;

use dfg::core::{FieldSet, Workload};
use dfg::dataflow::{FilterOp, NetworkSpec, NodeId, Schedule};
use dfg::expr::{compile, parse, Expr};
use dfg::kernels::{gradient_at, Dims3};
// `dfg::prelude::Strategy` (the execution strategy enum) collides with
// proptest's `Strategy` trait, so import the prelude pieces explicitly and
// alias the enum.
use dfg::core::Strategy as ExecStrategy;
use dfg::prelude::{DeviceProfile, Engine, RectilinearMesh, RtWorkload};

// ---------------------------------------------------------------------------
// A trivially-simple reference interpreter for dataflow networks.
// ---------------------------------------------------------------------------

fn interpret(spec: &NetworkSpec, fields: &FieldSet) -> Vec<f32> {
    let sched = Schedule::new(spec).expect("valid network");
    let n = fields.ncells();
    let mut vals: Vec<Option<Vec<f32>>> = vec![None; spec.len()];
    let get = |vals: &Vec<Option<Vec<f32>>>, id: NodeId| -> Vec<f32> {
        vals[id.idx()].clone().expect("operand computed")
    };
    for &id in &sched.order {
        let node = spec.node(id);
        let ins: Vec<Vec<f32>> = node.inputs.iter().map(|&i| get(&vals, i)).collect();
        let out: Vec<f32> = match &node.op {
            FilterOp::Input { name, .. } => fields
                .get(name)
                .and_then(|f| f.data.clone())
                .expect("field provided"),
            FilterOp::Const(v) => vec![*v; n],
            FilterOp::Add => (0..n).map(|i| ins[0][i] + ins[1][i]).collect(),
            FilterOp::Sub => (0..n).map(|i| ins[0][i] - ins[1][i]).collect(),
            FilterOp::Mul => (0..n).map(|i| ins[0][i] * ins[1][i]).collect(),
            FilterOp::Div => (0..n).map(|i| ins[0][i] / ins[1][i]).collect(),
            FilterOp::Min2 => (0..n).map(|i| ins[0][i].min(ins[1][i])).collect(),
            FilterOp::Max2 => (0..n).map(|i| ins[0][i].max(ins[1][i])).collect(),
            FilterOp::Lt => (0..n).map(|i| f32::from(ins[0][i] < ins[1][i])).collect(),
            FilterOp::Gt => (0..n).map(|i| f32::from(ins[0][i] > ins[1][i])).collect(),
            FilterOp::Le => (0..n).map(|i| f32::from(ins[0][i] <= ins[1][i])).collect(),
            FilterOp::Ge => (0..n).map(|i| f32::from(ins[0][i] >= ins[1][i])).collect(),
            FilterOp::EqOp => (0..n).map(|i| f32::from(ins[0][i] == ins[1][i])).collect(),
            FilterOp::Ne => (0..n).map(|i| f32::from(ins[0][i] != ins[1][i])).collect(),
            FilterOp::Select => (0..n)
                .map(|i| {
                    if ins[0][i] != 0.0 {
                        ins[1][i]
                    } else {
                        ins[2][i]
                    }
                })
                .collect(),
            FilterOp::Neg => (0..n).map(|i| -ins[0][i]).collect(),
            FilterOp::Sqrt => (0..n).map(|i| ins[0][i].sqrt()).collect(),
            FilterOp::Abs => (0..n).map(|i| ins[0][i].abs()).collect(),
            FilterOp::Sin => (0..n).map(|i| ins[0][i].sin()).collect(),
            FilterOp::Cos => (0..n).map(|i| ins[0][i].cos()).collect(),
            FilterOp::Tan => (0..n).map(|i| ins[0][i].tan()).collect(),
            FilterOp::Exp => (0..n).map(|i| ins[0][i].exp()).collect(),
            FilterOp::Log => (0..n).map(|i| ins[0][i].ln()).collect(),
            FilterOp::Pow => (0..n).map(|i| ins[0][i].powf(ins[1][i])).collect(),
            FilterOp::Atan2 => (0..n).map(|i| ins[0][i].atan2(ins[1][i])).collect(),
            FilterOp::And => (0..n)
                .map(|i| f32::from(ins[0][i] != 0.0 && ins[1][i] != 0.0))
                .collect(),
            FilterOp::Or => (0..n)
                .map(|i| f32::from(ins[0][i] != 0.0 || ins[1][i] != 0.0))
                .collect(),
            FilterOp::Not => (0..n).map(|i| f32::from(ins[0][i] == 0.0)).collect(),
            FilterOp::Compose3 => {
                let mut out = vec![0.0f32; 4 * n];
                for i in 0..n {
                    out[4 * i] = ins[0][i];
                    out[4 * i + 1] = ins[1][i];
                    out[4 * i + 2] = ins[2][i];
                }
                out
            }
            FilterOp::Decompose(c) => (0..n).map(|i| ins[0][4 * i + *c as usize]).collect(),
            FilterOp::Norm3 => (0..n)
                .map(|i| {
                    let v = &ins[0][4 * i..4 * i + 3];
                    (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt()
                })
                .collect(),
            FilterOp::Dot3 => (0..n)
                .map(|i| {
                    let a = &ins[0][4 * i..4 * i + 3];
                    let b = &ins[1][4 * i..4 * i + 3];
                    a[0] * b[0] + a[1] * b[1] + a[2] * b[2]
                })
                .collect(),
            FilterOp::Cross3 => {
                let mut out = vec![0.0f32; 4 * n];
                for i in 0..n {
                    let a = &ins[0][4 * i..4 * i + 3];
                    let b = &ins[1][4 * i..4 * i + 3];
                    out[4 * i] = a[1] * b[2] - a[2] * b[1];
                    out[4 * i + 1] = a[2] * b[0] - a[0] * b[2];
                    out[4 * i + 2] = a[0] * b[1] - a[1] * b[0];
                }
                out
            }
            FilterOp::Grad3d => {
                let d = Dims3::from_buffer(&ins[1]);
                let mut out = vec![0.0f32; 4 * n];
                for i in 0..n {
                    let g = gradient_at(&ins[0], &ins[2], &ins[3], &ins[4], d, i);
                    out[4 * i..4 * i + 3].copy_from_slice(&g);
                }
                out
            }
        };
        vals[id.idx()] = Some(out);
    }
    vals[spec.result.idx()].take().expect("result computed")
}

// ---------------------------------------------------------------------------
// Random expression programs over the fields u, v, w (+ mesh coords).
// ---------------------------------------------------------------------------

fn arb_expr() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        Just("u".to_string()),
        Just("v".to_string()),
        Just("w".to_string()),
        (1i32..20).prop_map(|k| format!("{:.2}", k as f32 * 0.25)),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} + {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} - {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} * {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("min({a}, {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("max({a}, {b})")),
            inner.clone().prop_map(|a| format!("-{a}")),
            inner.clone().prop_map(|a| format!("abs({a})")),
            inner.clone().prop_map(|a| format!("sqrt(abs({a}))")),
            (inner.clone(), inner.clone(), inner)
                .prop_map(|(c, a, b)| format!("(if (({c}) > 1) then (({a})) else (({b})))")),
        ]
    })
}

fn small_fields() -> FieldSet {
    // 343 cells: deliberately larger than the fused executor's 256-element
    // chunk so every property also exercises the chunk boundary.
    let mesh = RectilinearMesh::unit_cube([7, 7, 7]);
    FieldSet::for_rt_mesh(&mesh, &RtWorkload::new(42, 2))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All strategies agree bit-for-bit with the reference interpreter on
    /// random expressions.
    #[test]
    fn strategies_match_interpreter(src in arb_expr()) {
        let program = format!("r = {src}");
        let spec = compile(&program).expect("generated programs are valid");
        let fields = small_fields();
        let expected = interpret(&spec, &fields);
        let mut engine = Engine::new(DeviceProfile::intel_x5660());
        for strategy in ExecStrategy::ALL {
            let got = engine
                .derive_spec(&spec, &fields, strategy)
                .expect("execute")
                .field
                .expect("real mode")
                .data;
            prop_assert_eq!(got.len(), expected.len());
            for i in 0..got.len() {
                prop_assert!(
                    got[i].to_bits() == expected[i].to_bits(),
                    "{} differs at {}: {} vs {}",
                    strategy, i, got[i], expected[i]
                );
            }
        }
    }

    /// Pretty-printing a parsed expression reparses to the same AST.
    #[test]
    fn pretty_print_reparses(src in arb_expr()) {
        let program = format!("r = {src}");
        let parsed = parse(&program).expect("valid");
        let pretty = format!("r = {}", parsed.stmts[0].expr.pretty());
        let reparsed = parse(&pretty).expect("pretty output reparses");
        prop_assert_eq!(&parsed.stmts[0].expr, &reparsed.stmts[0].expr);
    }

    /// Multi-statement programs: splitting an expression across named
    /// statements never changes the result.
    #[test]
    fn statement_splitting_is_semantics_preserving(a in arb_expr(), b in arb_expr()) {
        let inline = format!("r = ({a}) * ({b}) + ({a})");
        let split = format!("t0 = {a}\nt1 = {b}\nr = t0 * t1 + t0");
        let fields = small_fields();
        let mut engine = Engine::new(DeviceProfile::intel_x5660());
        let x = engine
            .derive(&inline, &fields, ExecStrategy::Fusion)
            .expect("inline")
            .field.expect("real").data;
        let y = engine
            .derive(&split, &fields, ExecStrategy::Fusion)
            .expect("split")
            .field.expect("real").data;
        for i in 0..x.len() {
            // Named reuse evaluates `a` once where the inline form wrote it
            // twice — same value either way (identical subtree, identical
            // per-element arithmetic), so bits must match.
            prop_assert!(x[i].to_bits() == y[i].to_bits(), "at {}: {} vs {}", i, x[i], y[i]);
        }
    }

    /// Schedules respect dependency edges for arbitrary generated programs.
    #[test]
    fn schedule_topological_for_random_programs(src in arb_expr()) {
        let spec = compile(&format!("r = {src}")).expect("valid");
        let sched = Schedule::new(&spec).expect("schedulable");
        let mut pos = vec![usize::MAX; spec.len()];
        for (i, id) in sched.order.iter().enumerate() {
            pos[id.idx()] = i;
        }
        for &id in &sched.order {
            for &input in &spec.node(id).inputs {
                prop_assert!(pos[input.idx()] < pos[id.idx()]);
            }
        }
    }

    /// Device-memory predictions follow the Figure 2 accounting rules for
    /// arbitrary elementwise programs: fusion is *exactly* "every distinct
    /// input plus the output" (it can exceed staged — the point of the
    /// paper's Figure 2), and roundtrip never exceeds one kernel's widest
    /// footprint (per-port ports + output; ≤ 4 for elementwise ops).
    #[test]
    fn memreq_accounting_rules(src in arb_expr()) {
        use dfg::dataflow::{memreq_units, FilterOp};
        let spec = compile(&format!("r = {src}")).expect("valid");
        let rt = memreq_units(&spec, ExecStrategy::Roundtrip).expect("roundtrip").units;
        let fu = memreq_units(&spec, ExecStrategy::Fusion).expect("fusion").units;
        let distinct_inputs = spec
            .count_ops(|op| matches!(op, FilterOp::Input { small: false, .. })) as u64;
        prop_assert_eq!(fu, distinct_inputs + 1, "fusion = inputs + output");
        // select has 3 ports, so a roundtrip kernel holds at most 4 arrays
        // (and a kernel-free program like `r = u` holds none).
        prop_assert!(rt <= 4, "roundtrip peak {} > one-kernel footprint", rt);
        let has_compute = spec.count_ops(|op| !op.is_source()) > 0;
        prop_assert_eq!(rt >= 2, has_compute);
    }
}

// ---------------------------------------------------------------------------
// The three paper workloads against the interpreter (deterministic).
// ---------------------------------------------------------------------------

#[test]
fn paper_workloads_match_interpreter_bitwise() {
    let mesh = RectilinearMesh::unit_cube([7, 6, 5]);
    let fields = FieldSet::for_rt_mesh(&mesh, &RtWorkload::paper_default());
    let mut engine = Engine::new(DeviceProfile::intel_x5660());
    for workload in Workload::ALL {
        let spec = compile(workload.source()).expect("workload compiles");
        let expected = interpret(&spec, &fields);
        for strategy in ExecStrategy::ALL {
            let got = engine
                .derive_spec(&spec, &fields, strategy)
                .expect("execute")
                .field
                .expect("real mode")
                .data;
            for i in 0..got.len() {
                assert_eq!(
                    got[i].to_bits(),
                    expected[i].to_bits(),
                    "{workload}/{strategy} at {i}: {} vs {}",
                    got[i],
                    expected[i]
                );
            }
        }
    }
}

#[test]
fn conditional_expression_matches_interpreter() {
    let spec = compile("r = if (u > 0.5) then (v * v) else (-w)").expect("valid");
    let fields = small_fields();
    let expected = interpret(&spec, &fields);
    let mut engine = Engine::new(DeviceProfile::intel_x5660());
    for strategy in ExecStrategy::ALL {
        let got = engine
            .derive_spec(&spec, &fields, strategy)
            .expect("execute")
            .field
            .expect("real mode")
            .data;
        assert_eq!(got, expected, "{strategy}");
    }
}

#[test]
fn expr_ast_helper_types_exposed() {
    // The facade exposes the AST for host tooling.
    let p = parse("r = a + 2").expect("valid");
    match &p.stmts[0].expr {
        Expr::Binary(op, _, _) => assert_eq!(op.symbol(), "+"),
        other => panic!("unexpected AST {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Streamed fusion is bit-identical to single-pass fusion for any
    /// chunking budget that admits at least one slab.
    #[test]
    fn streaming_bit_identical_for_any_budget(
        src in arb_expr(),
        budget_cells in 8usize..200,
    ) {
        let fields = small_fields(); // 7x7x7 = 343 cells
        let program = format!("r = {src}");
        let mut engine = Engine::new(DeviceProfile::intel_x5660());
        let fused = engine
            .derive(&program, &fields, ExecStrategy::Fusion)
            .expect("fusion")
            .field
            .expect("real")
            .data;
        // Budget in bytes: enough for `budget_cells` cells of the fused
        // footprint (inputs + output ≤ 4 lanes for these programs).
        let budget = (4 * 4 * budget_cells) as u64;
        let streamed = engine.derive_streamed(&program, &fields, Some(budget));
        match streamed {
            Ok(report) => {
                prop_assert!(report.high_water_bytes() <= budget);
                let data = report.field.expect("real").data;
                for i in 0..fused.len() {
                    prop_assert!(
                        data[i].to_bits() == fused[i].to_bits(),
                        "at {}: {} vs {}", i, data[i], fused[i]
                    );
                }
            }
            Err(e) => {
                // Only acceptable failure: budget below one slab.
                prop_assert!(e.is_out_of_memory(), "unexpected error {}", e);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Full CSE (value numbering with commutative canonicalization) never
    /// changes results: optimized and unoptimized networks agree bit-for-
    /// bit on random expressions over real field data.
    #[test]
    fn full_cse_preserves_results(src in arb_expr()) {
        use dfg::dataflow::full_cse;
        let spec = compile(&format!("r = {src}")).expect("valid");
        let (opt, stats) = full_cse(&spec);
        prop_assert!(opt.validate().is_ok());
        prop_assert!(opt.len() <= spec.len());
        prop_assert_eq!(stats.nodes_after + stats.merged,
            Schedule::new(&spec).expect("valid").len());
        let fields = small_fields();
        let a = interpret(&spec, &fields);
        let b = interpret(&opt, &fields);
        for i in 0..a.len() {
            prop_assert!(
                a[i].to_bits() == b[i].to_bits(),
                "at {}: {} vs {}", i, a[i], b[i]
            );
        }
    }
}
