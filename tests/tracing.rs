//! Integration tests for the observability layer: span trees recorded
//! through the engine, Chrome-trace export, and the determinism of
//! virtual-clock timestamps under `ExecMode::Model`.

use dfg::core::{Engine, EngineOptions, FieldSet, Strategy};
use dfg::ocl::{DeviceProfile, ExecMode};
use dfg::trace::json::{self, Value};
use dfg::trace::{Trace, Tracer};

fn real_fields(n: usize) -> FieldSet {
    let mut fields = FieldSet::new(n);
    fields.insert_scalar("u", vec![1.0; n]).unwrap();
    fields.insert_scalar("v", vec![2.0; n]).unwrap();
    fields.insert_scalar("w", vec![2.0; n]).unwrap();
    fields
}

fn traced_run(strategy: Strategy, mode: ExecMode) -> Trace {
    let fields = match mode {
        ExecMode::Real => real_fields(512),
        ExecMode::Model => {
            let mut fields = FieldSet::new(512);
            fields.insert_virtual_scalar("u");
            fields.insert_virtual_scalar("v");
            fields.insert_virtual_scalar("w");
            fields
        }
    };
    let mut engine = Engine::with_options(
        DeviceProfile::nvidia_m2050(),
        EngineOptions {
            mode,
            ..Default::default()
        },
    );
    engine.set_tracer(Tracer::new());
    let report = engine
        .derive("mag = sqrt(u*u + v*v + w*w)", &fields, strategy)
        .expect("derivation succeeds");
    report.trace.expect("tracer attached")
}

#[test]
fn engine_spans_nest_parse_plan_execute_and_device_events() {
    let trace = traced_run(Strategy::Staged, ExecMode::Real);
    let spans = trace.spans();
    let index_of = |name: &str| {
        spans
            .iter()
            .position(|s| s.name == name)
            .unwrap_or_else(|| panic!("span `{name}` missing"))
    };

    // The root covers the whole derivation; parse/plan/execute are its
    // children; strategy stages sit under execute; device events are leaves.
    let root = index_of("derive");
    assert_eq!(spans[root].parent, None);
    let exec = index_of("execute.staged");
    for name in ["parse", "plan", "execute.staged"] {
        assert_eq!(spans[index_of(name)].parent, Some(root), "{name} parent");
    }
    for name in ["staged.upload", "staged.kernel", "staged.download"] {
        assert_eq!(spans[index_of(name)].parent, Some(exec), "{name} parent");
    }
    let h2d = index_of("ocl.h2d");
    assert_eq!(spans[h2d].parent, Some(index_of("staged.upload")));
    assert!(spans[h2d].meta_u64("bytes").unwrap() > 0);

    // Parents are recorded before their children (open order), and every
    // span's interval nests inside its parent's.
    for (i, span) in spans.iter().enumerate() {
        if let Some(p) = span.parent {
            assert!(p < i, "parent of `{}` recorded after it", span.name);
            assert!(spans[p].wall_start_ns <= span.wall_start_ns);
            assert!(spans[p].wall_end_ns >= span.wall_end_ns);
        }
    }
}

#[test]
fn chrome_export_of_an_engine_trace_is_valid_json() {
    let trace = traced_run(Strategy::Fusion, ExecMode::Real);
    let doc = json::parse(&trace.to_chrome_trace()).expect("valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents array");
    // Every complete event carries the required Chrome-trace fields.
    let complete: Vec<&Value> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
        .collect();
    assert!(!complete.is_empty());
    for event in &complete {
        for key in ["name", "ts", "dur", "pid", "tid"] {
            assert!(event.get(key).is_some(), "missing {key}");
        }
    }
    // Device events appear on the virtual-clock lane (pid 2).
    assert!(complete.iter().any(|e| {
        e.get("pid").and_then(Value::as_f64) == Some(2.0)
            && e.get("name").and_then(Value::as_str) == Some("ocl.kernel")
    }));
}

#[test]
fn model_mode_virtual_timestamps_are_deterministic() {
    for strategy in [Strategy::Roundtrip, Strategy::Staged, Strategy::Fusion] {
        let a = traced_run(strategy, ExecMode::Model);
        let b = traced_run(strategy, ExecMode::Model);
        assert_eq!(a.spans().len(), b.spans().len(), "{strategy}: span count");
        for (sa, sb) in a.spans().iter().zip(b.spans()) {
            assert_eq!(sa.name, sb.name);
            assert_eq!(sa.parent, sb.parent);
            // Wall clocks differ run to run; the modeled device clock must
            // not — bit-identical, not merely close.
            assert_eq!(sa.virt_start, sb.virt_start, "{strategy}: {}", sa.name);
            assert_eq!(sa.virt_end, sb.virt_end, "{strategy}: {}", sa.name);
        }
    }
}

#[test]
fn model_and_real_mode_agree_on_the_virtual_clock() {
    let model = traced_run(Strategy::Fusion, ExecMode::Model);
    let real = traced_run(Strategy::Fusion, ExecMode::Real);
    assert!((model.device_seconds() - real.device_seconds()).abs() < 1e-12);
}
