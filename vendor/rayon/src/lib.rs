//! Offline shim for [rayon](https://crates.io/crates/rayon).
//!
//! Implements the small slice-parallel surface this workspace uses —
//! `par_chunks_mut` plus the `zip`/`enumerate`/`for_each` adaptors — on top
//! of `std::thread::scope`. Chunk lists are materialized eagerly (they are
//! a handful of `&mut [T]` fat pointers, not data copies), then distributed
//! across one worker per available core.

use std::num::NonZeroUsize;

/// The import surface mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{ParIter, ParallelSliceMut};
}

/// Number of worker threads `for_each` fans out to.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// An eager "parallel iterator": a list of items to process concurrently.
pub struct ParIter<I> {
    items: Vec<I>,
}

impl<I: Send> ParIter<I> {
    /// Pair items with another parallel iterator, rayon-style (truncates to
    /// the shorter side, as `zip` does).
    pub fn zip<J: Send>(self, other: ParIter<J>) -> ParIter<(I, J)> {
        ParIter {
            items: self.items.into_iter().zip(other.items).collect(),
        }
    }

    /// Attach each item's index.
    pub fn enumerate(self) -> ParIter<(usize, I)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Run `f` over every item, distributing items across worker threads.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(I) + Sync,
    {
        let mut items = self.items;
        let nthreads = current_num_threads().min(items.len().max(1));
        if nthreads <= 1 {
            for item in items {
                f(item);
            }
            return;
        }
        let per = items.len().div_ceil(nthreads);
        let f = &f;
        std::thread::scope(|scope| {
            while !items.is_empty() {
                let batch: Vec<I> = items.drain(..per.min(items.len())).collect();
                scope.spawn(move || {
                    for item in batch {
                        f(item);
                    }
                });
            }
        });
    }
}

/// Extension trait providing `par_chunks_mut` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Split into non-overlapping mutable chunks of `chunk_size` (the last
    /// chunk may be shorter), to be processed in parallel.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
        ParIter {
            items: self.chunks_mut(chunk_size).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn chunked_for_each_covers_every_element() {
        let mut v = vec![0u64; 10_000];
        v.par_chunks_mut(64).enumerate().for_each(|(c, chunk)| {
            for (i, x) in chunk.iter_mut().enumerate() {
                *x = (c * 64 + i) as u64;
            }
        });
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i as u64);
        }
    }

    #[test]
    fn zip_of_three_slices() {
        let (mut a, mut b, mut c) = (vec![0; 100], vec![0; 100], vec![0; 100]);
        a.par_chunks_mut(7)
            .zip(b.par_chunks_mut(7))
            .zip(c.par_chunks_mut(7))
            .enumerate()
            .for_each(|(k, ((ca, cb), cc))| {
                for i in 0..ca.len() {
                    ca[i] = k;
                    cb[i] = k + 1;
                    cc[i] = k + 2;
                }
            });
        assert_eq!(a[0], 0);
        assert_eq!(b[0], 1);
        assert_eq!(c[99], 100 / 7 + 2);
    }

    #[test]
    fn empty_slice_is_fine() {
        let mut v: Vec<f32> = Vec::new();
        v.par_chunks_mut(8)
            .for_each(|_| panic!("no chunks expected"));
    }
}
