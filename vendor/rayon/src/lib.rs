//! Offline shim for [rayon](https://crates.io/crates/rayon).
//!
//! Implements the small slice-parallel surface this workspace uses —
//! `par_chunks_mut` plus the `zip`/`enumerate`/`for_each` adaptors — on top
//! of the persistent `dfg-exec` work-stealing pool. Everything is *lazy*:
//! adaptors compose an [`IndexedSource`] description of the iteration
//! space instead of `collect()`ing item `Vec`s, and `for_each` maps index
//! `i` to its item on whichever pool thread claims it. A launch therefore
//! allocates nothing and spawns nothing — it is a queue push into a pool
//! of already-running workers.

/// The import surface mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{ParIter, ParallelSliceMut};
}

/// Number of worker threads `for_each` fans out to (the `dfg-exec` global
/// pool size, which honors `DFG_NUM_THREADS`).
pub fn current_num_threads() -> usize {
    dfg_exec::current_num_threads()
}

/// A random-access description of a parallel iteration space: `len()`
/// items, item `i` produced on demand by `get(i)`.
///
/// # Safety
///
/// `get(i)` may hand out aliasing-sensitive items (`&mut [T]` chunks), so
/// a driver must call it **at most once per index** per iteration pass.
/// [`ParIter::for_each`] upholds this: the pool claims each index from a
/// shared counter exactly once.
pub unsafe trait IndexedSource: Sync {
    /// The item produced for one index.
    type Item;
    /// Number of items.
    fn len(&self) -> usize;
    /// Whether the iteration space is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Produce item `i`.
    ///
    /// # Safety
    ///
    /// `i < self.len()`, and no index may be requested twice within one
    /// iteration pass (items may be disjoint `&mut` borrows).
    unsafe fn get(&self, i: usize) -> Self::Item;
}

/// Lazy source of non-overlapping `&mut [T]` chunks of a slice.
pub struct ChunksMut<'a, T> {
    ptr: *mut T,
    len: usize,
    chunk: usize,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

// SAFETY: the raw pointer stands for an exclusive borrow of the slice held
// for `'a`; distinct indices map to disjoint subslices, and `IndexedSource`
// requires each index be taken at most once, so no two threads ever hold
// overlapping `&mut` ranges.
unsafe impl<T: Send> Send for ChunksMut<'_, T> {}
unsafe impl<T: Send> Sync for ChunksMut<'_, T> {}

unsafe impl<'a, T: Send> IndexedSource for ChunksMut<'a, T> {
    type Item = &'a mut [T];

    fn len(&self) -> usize {
        if self.len == 0 {
            0
        } else {
            self.len.div_ceil(self.chunk)
        }
    }

    unsafe fn get(&self, i: usize) -> &'a mut [T] {
        let start = i * self.chunk;
        let n = self.chunk.min(self.len - start);
        // SAFETY: `start + n <= self.len` and each index yields a disjoint
        // range of the exclusively-borrowed slice (see caller contract).
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(start), n) }
    }
}

/// Lazy pairing of two sources, truncated to the shorter side.
pub struct Zip<A, B> {
    a: A,
    b: B,
}

unsafe impl<A: IndexedSource, B: IndexedSource> IndexedSource for Zip<A, B> {
    type Item = (A::Item, B::Item);

    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }

    unsafe fn get(&self, i: usize) -> Self::Item {
        // SAFETY: `i` is in range for both sides and forwarded once each.
        unsafe { (self.a.get(i), self.b.get(i)) }
    }
}

/// Lazy index attachment.
pub struct Enumerate<S> {
    inner: S,
}

unsafe impl<S: IndexedSource> IndexedSource for Enumerate<S> {
    type Item = (usize, S::Item);

    fn len(&self) -> usize {
        self.inner.len()
    }

    unsafe fn get(&self, i: usize) -> Self::Item {
        // SAFETY: forwarded once, in range.
        unsafe { (i, self.inner.get(i)) }
    }
}

/// A lazy "parallel iterator": an [`IndexedSource`] awaiting `for_each`.
pub struct ParIter<S> {
    source: S,
}

impl<S: IndexedSource> ParIter<S> {
    /// Pair items with another parallel iterator, rayon-style (truncates
    /// to the shorter side, as `zip` does).
    pub fn zip<T: IndexedSource>(self, other: ParIter<T>) -> ParIter<Zip<S, T>> {
        ParIter {
            source: Zip {
                a: self.source,
                b: other.source,
            },
        }
    }

    /// Attach each item's index.
    pub fn enumerate(self) -> ParIter<Enumerate<S>> {
        ParIter {
            source: Enumerate { inner: self.source },
        }
    }

    /// Run `f` over every item on the persistent `dfg-exec` pool, blocking
    /// until all items complete. Items are claimed dynamically; nothing is
    /// materialized up front.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(S::Item) + Sync,
    {
        let source = &self.source;
        // SAFETY: `parallel_for` passes each index in `0..len` exactly
        // once, satisfying the `IndexedSource::get` contract.
        dfg_exec::parallel_for(source.len(), |i| f(unsafe { source.get(i) }));
    }
}

/// Extension trait providing `par_chunks_mut` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Split into non-overlapping mutable chunks of `chunk_size` (the last
    /// chunk may be shorter), to be processed in parallel.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<ChunksMut<'_, T>>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<ChunksMut<'_, T>> {
        assert!(chunk_size > 0, "chunk_size must be non-zero");
        ParIter {
            source: ChunksMut {
                ptr: self.as_mut_ptr(),
                len: self.len(),
                chunk: chunk_size,
                _marker: std::marker::PhantomData,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn chunked_for_each_covers_every_element() {
        let mut v = vec![0u64; 10_000];
        v.par_chunks_mut(64).enumerate().for_each(|(c, chunk)| {
            for (i, x) in chunk.iter_mut().enumerate() {
                *x = (c * 64 + i) as u64;
            }
        });
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i as u64);
        }
    }

    #[test]
    fn zip_of_three_slices() {
        let (mut a, mut b, mut c) = (vec![0; 100], vec![0; 100], vec![0; 100]);
        a.par_chunks_mut(7)
            .zip(b.par_chunks_mut(7))
            .zip(c.par_chunks_mut(7))
            .enumerate()
            .for_each(|(k, ((ca, cb), cc))| {
                for i in 0..ca.len() {
                    ca[i] = k;
                    cb[i] = k + 1;
                    cc[i] = k + 2;
                }
            });
        assert_eq!(a[0], 0);
        assert_eq!(b[0], 1);
        assert_eq!(c[99], 100 / 7 + 2);
    }

    #[test]
    fn empty_slice_is_fine() {
        let mut v: Vec<f32> = Vec::new();
        v.par_chunks_mut(8)
            .for_each(|_| panic!("no chunks expected"));
    }

    #[test]
    fn zip_truncates_to_shorter_side() {
        let (mut a, mut b) = (vec![0u32; 100], vec![0u32; 40]);
        let mut pairs = 0usize;
        let count = std::sync::atomic::AtomicUsize::new(0);
        a.par_chunks_mut(10)
            .zip(b.par_chunks_mut(10))
            .for_each(|(ca, cb)| {
                assert_eq!(ca.len(), 10);
                assert_eq!(cb.len(), 10);
                count.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            });
        pairs += count.load(std::sync::atomic::Ordering::Relaxed);
        assert_eq!(pairs, 4);
    }

    #[test]
    fn serial_override_runs_on_calling_thread() {
        let mut v = vec![0u8; 4096];
        let tid = std::thread::current().id();
        dfg_exec::with_serial(|| {
            v.par_chunks_mut(16).for_each(|chunk| {
                assert_eq!(std::thread::current().id(), tid);
                chunk.fill(1);
            });
        });
        assert!(v.iter().all(|&x| x == 1));
    }
}
