//! Offline shim for [rand](https://crates.io/crates/rand).
//!
//! Deterministic seeded generation via a SplitMix64 stream. The stream
//! differs from upstream `StdRng` (which is ChaCha-based); this workspace
//! only relies on *determinism per seed*, never on specific values.

/// Types that [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Produce a value from one 64-bit draw.
    fn from_u64(raw: u64) -> Self;
}

impl Standard for f32 {
    fn from_u64(raw: u64) -> Self {
        // 24 high-entropy bits → uniform in [0, 1).
        ((raw >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn from_u64(raw: u64) -> Self {
        ((raw >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u32 {
    fn from_u64(raw: u64) -> Self {
        (raw >> 32) as u32
    }
}

impl Standard for u64 {
    fn from_u64(raw: u64) -> Self {
        raw
    }
}

impl Standard for bool {
    fn from_u64(raw: u64) -> Self {
        raw & 1 == 1
    }
}

/// The generation surface (`rng.gen::<f32>()` etc.).
pub trait Rng {
    /// Next raw 64-bit draw.
    fn next_u64(&mut self) -> u64;

    /// Generate a value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_u64(self.next_u64())
    }

    /// Uniform value in `[low, high)` for `usize` ranges.
    fn gen_range(&mut self, range: std::ops::Range<usize>) -> usize {
        let span = range.end - range.start;
        assert!(span > 0, "gen_range over an empty range");
        range.start + (self.next_u64() % span as u64) as usize
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    /// Deterministic generator (SplitMix64; upstream uses ChaCha12 — see
    /// crate docs for why the difference is acceptable here).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl super::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f32>().to_bits(), b.gen::<f32>().to_bits());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn f32_stays_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen::<f32>();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
        }
    }
}
