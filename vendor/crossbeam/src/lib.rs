//! Offline shim for [crossbeam](https://crates.io/crates/crossbeam).
//!
//! Provides `channel::unbounded` with `Clone`-able senders *and* receivers
//! (the property `std::sync::mpsc` lacks), backed by a Mutex + Condvar
//! queue. Throughput is adequate for the halo-exchange message volumes this
//! workspace moves.

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender has been dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Sender::send`] when every receiver has been
    /// dropped. Carries the unsent value, like crossbeam's.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

    /// The sending half; cheap to clone.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; cheap to clone (clones share the same queue).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().expect("channel lock").senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().expect("channel lock");
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueue a value, waking one blocked receiver.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            // Receivers sharing the queue Arc keep the channel alive; with
            // an unbounded queue a send cannot otherwise fail, and detecting
            // zero receivers is not needed by this workspace's protocols.
            let mut state = self.shared.queue.lock().expect("channel lock");
            state.items.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Block until a value is available or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().expect("channel lock");
            loop {
                if let Some(item) = state.items.pop_front() {
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.ready.wait(state).expect("channel lock");
            }
        }

        /// Non-blocking receive: `None` when the queue is currently empty.
        pub fn try_recv(&self) -> Option<T> {
            self.shared
                .queue
                .lock()
                .expect("channel lock")
                .items
                .pop_front()
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.recv().unwrap(), 2);
        }

        #[test]
        fn recv_errors_once_senders_are_gone() {
            let (tx, rx) = unbounded::<u32>();
            tx.send(7).unwrap();
            drop(tx);
            assert_eq!(rx.recv().unwrap(), 7);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn cross_thread_fan_in() {
            let (tx, rx) = unbounded();
            std::thread::scope(|scope| {
                for t in 0..4 {
                    let tx = tx.clone();
                    scope.spawn(move || {
                        for i in 0..100 {
                            tx.send(t * 100 + i).unwrap();
                        }
                    });
                }
                drop(tx);
                let mut got = Vec::new();
                while let Ok(v) = rx.recv() {
                    got.push(v);
                }
                assert_eq!(got.len(), 400);
            });
        }
    }
}
