//! Offline shim for [crossbeam](https://crates.io/crates/crossbeam).
//!
//! Provides `channel::unbounded` and `channel::bounded` with `Clone`-able
//! senders *and* receivers (the property `std::sync::mpsc` lacks), backed
//! by a Mutex + Condvar queue, plus the deadline operations
//! ([`channel::Receiver::recv_timeout`], [`channel::Sender::send_timeout`])
//! the fault-tolerant halo exchange relies on. Throughput is adequate for
//! the halo-exchange message volumes this workspace moves.

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        /// Signaled when an item arrives or the last sender departs.
        ready: Condvar,
        /// Signaled when queue space frees up (bounded channels only).
        space: Condvar,
        /// `usize::MAX` for unbounded channels.
        capacity: usize,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender has been dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Sender::send`] when every receiver has been
    /// dropped. Carries the unsent value, like crossbeam's.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The deadline expired with the channel still empty.
        Timeout,
        /// Every sender was dropped and the queue is drained.
        Disconnected,
    }

    impl std::fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                RecvTimeoutError::Timeout => {
                    write!(f, "timed out waiting on an empty channel")
                }
                RecvTimeoutError::Disconnected => {
                    write!(f, "receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    /// Error returned by [`Sender::send_timeout`]. Carries the unsent value.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum SendTimeoutError<T> {
        /// The deadline expired with the queue still full.
        Timeout(T),
        /// Every receiver was dropped (not tracked by this shim; reserved
        /// for interface compatibility).
        Disconnected(T),
    }

    impl<T> std::fmt::Display for SendTimeoutError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                SendTimeoutError::Timeout(_) => {
                    write!(f, "timed out sending on a full channel")
                }
                SendTimeoutError::Disconnected(_) => {
                    write!(f, "sending on a disconnected channel")
                }
            }
        }
    }

    impl<T: std::fmt::Debug> std::error::Error for SendTimeoutError<T> {}

    /// The sending half; cheap to clone.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; cheap to clone (clones share the same queue).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().expect("channel lock").senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().expect("channel lock");
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueue a value, waking one blocked receiver. On a bounded
        /// channel this blocks (without deadline) while the queue is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            // Receivers sharing the queue Arc keep the channel alive; with
            // an unbounded queue a send cannot otherwise fail, and detecting
            // zero receivers is not needed by this workspace's protocols.
            let mut state = self.shared.queue.lock().expect("channel lock");
            while state.items.len() >= self.shared.capacity {
                state = self.shared.space.wait(state).expect("channel lock");
            }
            state.items.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }

        /// Enqueue a value, waiting at most `timeout` for queue space on a
        /// bounded channel. Returns the value on timeout so the caller can
        /// retry or record the loss.
        pub fn send_timeout(&self, value: T, timeout: Duration) -> Result<(), SendTimeoutError<T>> {
            let deadline = Instant::now() + timeout;
            let mut state = self.shared.queue.lock().expect("channel lock");
            while state.items.len() >= self.shared.capacity {
                let now = Instant::now();
                if now >= deadline {
                    return Err(SendTimeoutError::Timeout(value));
                }
                let (next, wait) = self
                    .shared
                    .space
                    .wait_timeout(state, deadline - now)
                    .expect("channel lock");
                state = next;
                if wait.timed_out() && state.items.len() >= self.shared.capacity {
                    return Err(SendTimeoutError::Timeout(value));
                }
            }
            state.items.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Block until a value is available or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().expect("channel lock");
            loop {
                if let Some(item) = state.items.pop_front() {
                    drop(state);
                    self.shared.space.notify_one();
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.ready.wait(state).expect("channel lock");
            }
        }

        /// Non-blocking receive: `None` when the queue is currently empty.
        pub fn try_recv(&self) -> Option<T> {
            let mut state = self.shared.queue.lock().expect("channel lock");
            let item = state.items.pop_front();
            if item.is_some() {
                drop(state);
                self.shared.space.notify_one();
            }
            item
        }

        /// Block until a value is available, all senders disconnect, or
        /// `timeout` elapses — the deadline-based receive behind the halo
        /// exchange's straggler tolerance.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.shared.queue.lock().expect("channel lock");
            loop {
                if let Some(item) = state.items.pop_front() {
                    drop(state);
                    self.shared.space.notify_one();
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (next, wait) = self
                    .shared
                    .ready
                    .wait_timeout(state, deadline - now)
                    .expect("channel lock");
                state = next;
                if wait.timed_out() && state.items.is_empty() {
                    return if state.senders == 0 {
                        Err(RecvTimeoutError::Disconnected)
                    } else {
                        Err(RecvTimeoutError::Timeout)
                    };
                }
            }
        }
    }

    fn with_capacity<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
            }),
            ready: Condvar::new(),
            space: Condvar::new(),
            capacity,
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(usize::MAX)
    }

    /// Create a bounded channel: sends block (or time out) while `capacity`
    /// items are queued, so a stalled receiver exerts backpressure instead
    /// of letting senders grow memory without limit.
    ///
    /// # Panics
    /// Panics if `capacity` is zero; this shim does not implement
    /// rendezvous channels.
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        assert!(capacity > 0, "zero-capacity channels are not supported");
        with_capacity(capacity)
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.recv().unwrap(), 2);
        }

        #[test]
        fn recv_errors_once_senders_are_gone() {
            let (tx, rx) = unbounded::<u32>();
            tx.send(7).unwrap();
            drop(tx);
            assert_eq!(rx.recv().unwrap(), 7);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn recv_timeout_times_out_then_delivers() {
            let (tx, rx) = unbounded::<u32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(5).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(5));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn bounded_send_blocks_until_drained() {
            let (tx, rx) = bounded::<u32>(2);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            // Queue full: a deadline send fails and returns the value.
            match tx.send_timeout(3, Duration::from_millis(10)) {
                Err(SendTimeoutError::Timeout(v)) => assert_eq!(v, 3),
                other => panic!("expected timeout, got {other:?}"),
            }
            // Draining frees a slot for the retry.
            assert_eq!(rx.recv().unwrap(), 1);
            tx.send_timeout(3, Duration::from_millis(10)).unwrap();
            assert_eq!(rx.recv().unwrap(), 2);
            assert_eq!(rx.recv().unwrap(), 3);
        }

        #[test]
        fn bounded_backpressure_across_threads() {
            let (tx, rx) = bounded::<u32>(1);
            std::thread::scope(|scope| {
                scope.spawn(|| {
                    for i in 0..64 {
                        tx.send(i).unwrap();
                    }
                });
                let mut got = Vec::new();
                for _ in 0..64 {
                    got.push(rx.recv().unwrap());
                }
                assert_eq!(got, (0..64).collect::<Vec<_>>());
            });
        }

        #[test]
        fn cross_thread_fan_in() {
            let (tx, rx) = unbounded();
            std::thread::scope(|scope| {
                for t in 0..4 {
                    let tx = tx.clone();
                    scope.spawn(move || {
                        for i in 0..100 {
                            tx.send(t * 100 + i).unwrap();
                        }
                    });
                }
                drop(tx);
                let mut got = Vec::new();
                while let Ok(v) = rx.recv() {
                    got.push(v);
                }
                assert_eq!(got.len(), 400);
            });
        }
    }
}
