//! Offline shim for [criterion](https://crates.io/crates/criterion).
//!
//! Runs each benchmark closure a fixed number of iterations and prints
//! mean wall time per iteration (plus throughput when configured). No
//! warm-up modelling, outlier analysis, or HTML reports — this is a
//! timing harness sufficient to run `cargo bench` offline, not a
//! statistics engine.

use std::fmt;
use std::time::Instant;

/// Benchmark identifier: a function name plus a parameter label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Identifier rendered as `function_name/parameter`.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            full: format!("{function_name}/{parameter}"),
        }
    }

    /// Identifier from the parameter alone (the group name is the prefix).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            full: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { full: s }
    }
}

/// Units processed per iteration, for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to benchmark closures; `iter` times the workload.
pub struct Bencher {
    iters: u64,
    total_nanos: u128,
}

impl Bencher {
    /// Run `routine` `self.iters` times, recording total wall time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.total_nanos = start.elapsed().as_nanos();
    }
}

/// A named set of benchmarks sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Iterations per benchmark (upstream's statistical sample count is
    /// repurposed directly as the iteration count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Report throughput alongside per-iteration time.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Time one benchmark.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            iters: self.sample_size.max(1),
            total_nanos: 0,
        };
        f(&mut bencher);
        let per_iter = bencher.total_nanos as f64 / bencher.iters as f64;
        let mut line = format!(
            "{}/{}: {:>12} per iter ({} iters)",
            self.name,
            id.full,
            format_nanos(per_iter),
            bencher.iters
        );
        if let Some(tp) = self.throughput {
            let (count, unit) = match tp {
                Throughput::Elements(n) => (n, "elem"),
                Throughput::Bytes(n) => (n, "B"),
            };
            let rate = count as f64 / (per_iter / 1e9);
            line.push_str(&format!("  [{rate:.3e} {unit}/s]"));
        }
        println!("{line}");
        self
    }

    /// Time one benchmark, passing `input` through to the closure.
    pub fn bench_with_input<I, A, F>(&mut self, id: I, input: &A, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        A: ?Sized,
        F: FnMut(&mut Bencher, &A),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (marker only; results print as they complete).
    pub fn finish(&mut self) {}
}

/// Benchmark manager handed to `criterion_group!` functions.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }

    /// Time a standalone benchmark with default settings.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

fn format_nanos(nanos: f64) -> String {
    if nanos >= 1e9 {
        format!("{:.3} s", nanos / 1e9)
    } else if nanos >= 1e6 {
        format!("{:.3} ms", nanos / 1e6)
    } else if nanos >= 1e3 {
        format!("{:.3} µs", nanos / 1e3)
    } else {
        format!("{nanos:.0} ns")
    }
}

/// Opaque value barrier preventing the optimiser from deleting workloads.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Collect benchmark functions into a runner function named `$group`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running each group, honouring `--bench`/filter arguments by
/// ignoring them (all benchmarks always run).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_times_and_counts_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(5).throughput(Throughput::Elements(100));
        let mut runs = 0u64;
        group.bench_function(BenchmarkId::new("f", "p"), |b| {
            b.iter(|| runs += 1);
        });
        group.finish();
        assert_eq!(runs, 5);
    }

    #[test]
    fn bench_with_input_passes_the_input_through() {
        let mut c = Criterion::default();
        let mut seen = 0u64;
        c.benchmark_group("t").sample_size(3).bench_with_input(
            BenchmarkId::from_parameter(42),
            &42u64,
            |b, &n| {
                b.iter(|| seen = n);
            },
        );
        assert_eq!(seen, 42);
    }

    #[test]
    fn str_ids_work() {
        let mut c = Criterion::default();
        let mut hit = false;
        c.benchmark_group("t")
            .sample_size(1)
            .bench_function("plain", |b| {
                b.iter(|| hit = true);
            });
        assert!(hit);
    }
}
