//! Deterministic RNG for property tests.

/// SplitMix64-backed RNG; each test gets one seeded from its own name so
/// failures reproduce exactly on re-run.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary string (typically `module_path!()::test_name`).
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name gives a stable, well-mixed seed.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: hash }
    }

    /// Next raw 64-bit draw (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "TestRng::below(0)");
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::TestRng;

    #[test]
    fn deterministic_per_name() {
        let a: Vec<u64> = {
            let mut r = TestRng::for_test("x::y");
            (0..16).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_test("x::y");
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = TestRng::for_test("x::z");
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }
}
