//! String generation from a small regex subset.
//!
//! Supports exactly what this workspace's tests use: literal characters,
//! `.` (printable ASCII or newline), escaped metacharacters (`\-`, `\[`,
//! `\]`, `\.`, `\\`, `\n`, `\t`), character classes with ranges
//! (`[a-z0-9+\-*/()=,.\[\] \n]`), and `{m,n}` / `{n}` repetition applied to
//! the immediately preceding atom. Unsupported constructs panic so a new
//! test pattern fails loudly rather than silently generating garbage.

use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Atom {
    /// A fixed character.
    Literal(char),
    /// Any printable ASCII char, space, or newline (`.`).
    Any,
    /// One of an explicit choice set (expanded from a `[...]` class).
    Class(Vec<char>),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

/// Generate one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let pieces = parse(pattern);
    let mut out = String::new();
    for piece in &pieces {
        let span = piece.max - piece.min + 1;
        let count = piece.min + rng.below(span as u64) as usize;
        for _ in 0..count {
            out.push(emit(&piece.atom, rng));
        }
    }
    out
}

fn emit(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Literal(c) => *c,
        Atom::Any => {
            // Printable ASCII (0x20..=0x7E) plus '\n'.
            let idx = rng.below(96) as u32;
            if idx == 95 {
                '\n'
            } else {
                char::from_u32(0x20 + idx).expect("printable ascii")
            }
        }
        Atom::Class(choices) => choices[rng.below(choices.len() as u64) as usize],
    }
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces: Vec<Piece> = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '.' => {
                i += 1;
                Atom::Any
            }
            '[' => {
                let (class, next) = parse_class(&chars, i + 1, pattern);
                i = next;
                Atom::Class(class)
            }
            '\\' => {
                i += 1;
                let c = *chars
                    .get(i)
                    .unwrap_or_else(|| panic!("regex shim: trailing backslash in {pattern:?}"));
                i += 1;
                Atom::Literal(unescape(c))
            }
            '{' | '}' | ']' => {
                panic!("regex shim: unexpected {:?} in {pattern:?}", chars[i])
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        // Optional {n} / {m,n} repetition.
        let (min, max) = if chars.get(i) == Some(&'{') {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("regex shim: unclosed {{ in {pattern:?}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("repetition lower bound"),
                    hi.trim().parse().expect("repetition upper bound"),
                ),
                None => {
                    let n = body.trim().parse().expect("repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "regex shim: bad repetition in {pattern:?}");
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn parse_class(chars: &[char], mut i: usize, pattern: &str) -> (Vec<char>, usize) {
    let mut choices = Vec::new();
    while i < chars.len() && chars[i] != ']' {
        let c = if chars[i] == '\\' {
            i += 1;
            let c = *chars.get(i).unwrap_or_else(|| {
                panic!("regex shim: trailing backslash in class in {pattern:?}")
            });
            unescape(c)
        } else {
            chars[i]
        };
        i += 1;
        // Range like a-z (but a literal '-' escaped or at the end is itself).
        if chars.get(i) == Some(&'-') && chars.get(i + 1).is_some_and(|&n| n != ']') {
            let hi = if chars[i + 1] == '\\' {
                i += 1;
                unescape(chars[i + 1])
            } else {
                chars[i + 1]
            };
            i += 2;
            assert!(c <= hi, "regex shim: inverted range in {pattern:?}");
            for code in (c as u32)..=(hi as u32) {
                choices.push(char::from_u32(code).expect("class range char"));
            }
        } else {
            choices.push(c);
        }
    }
    assert!(
        chars.get(i) == Some(&']'),
        "regex shim: unclosed [ in {pattern:?}"
    );
    assert!(
        !choices.is_empty(),
        "regex shim: empty class in {pattern:?}"
    );
    (choices, i + 1)
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::generate;
    use crate::test_runner::TestRng;

    #[test]
    fn dot_repetition_bounds_length() {
        let mut rng = TestRng::for_test("dot");
        for _ in 0..200 {
            let s = generate(".{0,200}", &mut rng);
            assert!(s.chars().count() <= 200);
            assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn class_with_escapes_and_ranges() {
        let mut rng = TestRng::for_test("class");
        let allowed: Vec<char> = "abcdefghijklmnopqrstuvwxyz0123456789+-*/()=,.[] \n"
            .chars()
            .collect();
        for _ in 0..200 {
            let s = generate("[a-z0-9+\\-*/()=,.\\[\\] \n]{0,120}", &mut rng);
            assert!(s.chars().count() <= 120);
            assert!(s.chars().all(|c| allowed.contains(&c)), "bad char in {s:?}");
        }
    }

    #[test]
    fn nonzero_min_is_respected() {
        let mut rng = TestRng::for_test("min");
        for _ in 0..100 {
            let s = generate("[a+*/() =\n]{1,80}", &mut rng);
            let n = s.chars().count();
            assert!((1..=80).contains(&n));
        }
    }

    #[test]
    fn literals_pass_through() {
        let mut rng = TestRng::for_test("lit");
        assert_eq!(generate("abc", &mut rng), "abc");
        assert_eq!(generate("a{3}", &mut rng), "aaa");
    }
}
