//! Offline shim for [proptest](https://crates.io/crates/proptest).
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`Strategy`] trait with `prop_map` / `prop_flat_map` /
//! `prop_recursive` / `boxed`, strategies for integer ranges, tuples,
//! [`Just`], a regex-subset string generator, `prop::collection::vec`, the
//! [`proptest!`] / [`prop_oneof!`] / [`prop_assert!`] macros, and
//! [`ProptestConfig::with_cases`].
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case panics immediately; the generated
//!   inputs are printed (via `Debug`) in the failure message instead.
//! * **Deterministic seeding.** Each test's RNG is seeded from a hash of
//!   its module path and name, so failures reproduce exactly on re-run.
//! * **Regex strategies** support the subset used here: literal characters,
//!   `.`, character classes (`[a-z0-9+\-*/()=,.\[\] \n]`), and `{m,n}` /
//!   `{n}` repetition.

use std::fmt::Debug;
use std::rc::Rc;

pub mod test_runner;

use test_runner::TestRng;

/// Everything a property-test file imports.
pub mod prelude {
    /// Alias matching upstream's `prelude::prop` (so `prop::collection::vec`
    /// resolves).
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Per-block configuration; only `cases` is honoured.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each test in the block runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values of an associated type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: Clone + Debug;

    /// Draw one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Clone + Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then use it to build and draw from a second
    /// strategy (dependent generation).
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Build a recursive strategy: `self` is the leaf case and `f` wraps an
    /// inner strategy into composite cases. `depth` bounds recursion;
    /// `_desired_size` and `_expected_branch` are accepted for upstream
    /// signature compatibility but unused.
    fn prop_recursive<F, B>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + Clone + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> B,
        B: Strategy<Value = Self::Value> + 'static,
    {
        let mut current = self.clone().boxed();
        for _ in 0..depth {
            // Each level chooses the leaf or one more level of structure,
            // leaf-biased so generated sizes vary.
            current = union(vec![self.clone().boxed(), f(current).boxed()]);
        }
        current
    }

    /// Type-erase this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.new_value(rng)))
    }
}

/// A type-erased strategy; cheap to clone.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: Clone + Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Clone + Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn new_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// Uniform choice between boxed strategies (see [`prop_oneof!`]).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union(self.0.clone())
    }
}

impl<T: Clone + Debug> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.0.len() as u64) as usize;
        self.0[idx].new_value(rng)
    }
}

/// Build a [`Union`]; used by [`prop_oneof!`].
pub fn union<T>(variants: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T>
where
    T: Clone + Debug + 'static,
{
    assert!(
        !variants.is_empty(),
        "prop_oneof! needs at least one variant"
    );
    Union(variants).boxed()
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                lo + rng.below(span) as $t
            }
        }
    )*};
}

int_range_strategies!(usize, u64, u32, u16, u8);

macro_rules! signed_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + rng.below(span) as i64) as $t
            }
        }
    )*};
}

signed_range_strategies!(i64, i32, i16, i8);

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

mod regex;

impl Strategy for &str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        regex::generate(self, rng)
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;

    /// Vectors with lengths drawn from `len` and elements from `element`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// Output of [`vec()`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone + Debug,
    {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = Strategy::new_value(&self.len, rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Equivalent of `assert!` inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equivalent of `assert_eq!` inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Equivalent of `assert_ne!` inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($variant:expr),+ $(,)?) => {
        $crate::union(vec![$($crate::Strategy::boxed($variant)),+])
    };
}

/// Declare property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]`-style function (write `#[test]` above it, as with
/// upstream proptest) running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident( $($pat:pat in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::for_test(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..__config.cases {
                    let mut __inputs = String::new();
                    $(
                        let __value = $crate::Strategy::new_value(&($strat), &mut __rng);
                        __inputs.push_str(&format!(
                            "{} = {:?}; ",
                            stringify!($pat),
                            &__value
                        ));
                        let $pat = __value;
                    )*
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(move || $body),
                    );
                    if let Err(panic) = __outcome {
                        eprintln!(
                            "proptest {}: case {}/{} failed with inputs: {}",
                            stringify!($name),
                            __case + 1,
                            __config.cases,
                            __inputs
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_test("ranges");
        for _ in 0..500 {
            let (a, b) = Strategy::new_value(&(1usize..10, 5u64..6), &mut rng);
            assert!((1..10).contains(&a));
            assert_eq!(b, 5);
            let c = Strategy::new_value(&(-3i32..3), &mut rng);
            assert!((-3..3).contains(&c));
            let d = Strategy::new_value(&(2usize..=4), &mut rng);
            assert!((2..=4).contains(&d));
        }
    }

    #[test]
    fn oneof_map_and_vec_compose() {
        let mut rng = crate::test_runner::TestRng::for_test("compose");
        let strat = prop::collection::vec(
            prop_oneof![
                Just("x".to_string()),
                (1usize..5).prop_map(|n| format!("n{n}")),
            ],
            0..10,
        );
        for _ in 0..200 {
            let v = Strategy::new_value(&strat, &mut rng);
            assert!(v.len() < 10);
            for s in v {
                assert!(s == "x" || s.starts_with('n'));
            }
        }
    }

    #[test]
    fn recursive_strategies_terminate_and_vary() {
        let leaf = prop_oneof![Just("u".to_string()), Just("v".to_string())];
        let expr = leaf.prop_recursive(4, 24, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| format!("({a}+{b})"))
        });
        let mut rng = crate::test_runner::TestRng::for_test("recursion");
        let mut saw_composite = false;
        let mut saw_leaf = false;
        for _ in 0..200 {
            let s = Strategy::new_value(&expr, &mut rng);
            assert!(s.len() < 2_000, "depth bound holds");
            if s.contains('(') {
                saw_composite = true;
            } else {
                saw_leaf = true;
            }
        }
        assert!(saw_composite && saw_leaf, "both recursion arms exercised");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_works(x in 0usize..50, (a, b) in (0u32..4, 0u32..4)) {
            prop_assert!(x < 50);
            prop_assert!(a < 4 && b < 4);
        }
    }
}
